//! The repo-specific lint rules.
//!
//! Every rule works on the masked (code-only) view a [`ScannedFile`]
//! provides, skips test code, and honours `// lint: allow(...)`
//! annotations on the same or the immediately preceding line. Rules are
//! deliberately token-level: they trade a rustc plugin's precision for
//! zero dependencies and an offline-friendly sub-second run, and the
//! patterns they match (`partial_cmp` in a comparator, `.unwrap()`,
//! `panic!`) are distinctive enough that masking comments and strings
//! removes essentially all false positives.

use crate::registry::{
    ATOMIC_INTENTS, COMPUTE_CALLS, KNOWN_MAGICS, LOCK_HELPERS, RAW_PRINT_ALLOWED,
    TRACED_ENTRY_POINTS,
};
use crate::source::ScannedFile;
use crate::tokens::{
    acquisitions, enclosing_fn, function_spans, guard_scope, tokenize, AcquireKind, TokenKind,
};
use std::fmt;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `no-unwrap-in-lib`.
    pub rule: &'static str,
    /// Repo-relative file path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending line, trimmed — also the allowlist matching key.
    pub snippet: String,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}\n    {}", self.path, self.line, self.rule, self.message, self.snippet)
    }
}

/// All rule identifiers, in reporting order.
pub const RULES: &[&str] = &[
    "no-float-partial-cmp-sort",
    "no-unwrap-in-lib",
    "no-silent-clamp",
    "no-panic-in-engine",
    "no-raw-print-in-lib",
    "checkpoint-magic-registry",
    "no-bare-lock",
    "no-guard-across-compute",
    "no-lossy-as-cast",
    "atomic-ordering-registry",
    "trace-span-coverage",
];

/// Short aliases accepted in `// lint: allow(...)` annotations.
fn rule_aliases(rule: &str) -> &[&str] {
    match rule {
        "no-float-partial-cmp-sort" => &["partial-cmp", "no-float-partial-cmp-sort"],
        "no-unwrap-in-lib" => &["unwrap", "no-unwrap-in-lib"],
        "no-silent-clamp" => &["silent-clamp", "no-silent-clamp"],
        "no-panic-in-engine" => &["panic", "no-panic-in-engine"],
        "no-raw-print-in-lib" => &["raw-print", "no-raw-print-in-lib"],
        "checkpoint-magic-registry" => &["magic", "checkpoint-magic-registry"],
        "no-bare-lock" => &["bare-lock", "no-bare-lock"],
        "no-guard-across-compute" => &["guard-across-compute", "no-guard-across-compute"],
        "no-lossy-as-cast" => &["lossy-cast", "no-lossy-as-cast"],
        "atomic-ordering-registry" => &["atomic-ordering", "atomic-ordering-registry"],
        "trace-span-coverage" => &["trace-span", "trace-span-coverage"],
        _ => &[],
    }
}

/// True when line `idx` (0-based) carries or inherits an annotation
/// allowing `rule`: `// lint: allow(name)` on the same line or on the
/// line directly above, with `name` either the rule id or its alias.
/// Multiple names may be comma-separated.
fn is_allowed(file: &ScannedFile, idx: usize, rule: &str) -> bool {
    let allows = |comment: &str| -> bool {
        let Some(pos) = comment.find("lint: allow(") else { return false };
        let rest = &comment[pos + "lint: allow(".len()..];
        let Some(end) = rest.find(')') else { return false };
        rest[..end]
            .split(',')
            .map(str::trim)
            .any(|name| rule_aliases(rule).contains(&name))
    };
    if allows(&file.lines[idx].comment) {
        return true;
    }
    idx > 0 && allows(&file.lines[idx - 1].comment)
}

/// Standard per-line scaffold: applies the test exemption and the
/// annotation check, then lets `matcher` decide.
fn scan_lines(
    file: &ScannedFile,
    rule: &'static str,
    message: &str,
    out: &mut Vec<Finding>,
    matcher: impl Fn(&str) -> bool,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !matcher(&line.masked) || is_allowed(file, idx, rule) {
            continue;
        }
        out.push(Finding {
            rule,
            path: file.path.clone(),
            line: idx + 1,
            snippet: line.raw.trim().to_string(),
            message: message.to_string(),
        });
    }
}

/// `no-float-partial-cmp-sort`: float ordering must route through
/// `traj_index::topk` or `total_cmp`. `partial_cmp` in non-test library
/// code is how the 7 NaN-unsound sorts of PRs 1–3 slipped through:
/// `unwrap_or(Equal)` silently scrambles the order and `.unwrap()`
/// panics the first time a distance is poisoned.
pub fn no_float_partial_cmp_sort(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-float-partial-cmp-sort",
        "float ordering via partial_cmp; use total_cmp or traj_index::topk",
        out,
        |masked| masked.contains(".partial_cmp("),
    );
}

/// `no-unwrap-in-lib`: library crates return typed errors instead of
/// panicking. `#[cfg(test)]` code is exempt; genuinely infallible sites
/// carry `// lint: allow(unwrap)` with a one-line justification.
pub fn no_unwrap_in_lib(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-unwrap-in-lib",
        "unwrap() in library code; return a typed error or justify with lint: allow(unwrap)",
        out,
        |masked| masked.contains(".unwrap()"),
    );
}

/// `no-silent-clamp`: bans `unwrap_or(Ordering::Equal)` — the pattern
/// that turns a failed float comparison into a silent reorder instead
/// of an error.
pub fn no_silent_clamp(file: &ScannedFile, out: &mut Vec<Finding>) {
    scan_lines(
        file,
        "no-silent-clamp",
        "unwrap_or(Ordering::Equal) silently clamps a failed comparison",
        out,
        |masked| {
            masked.contains("unwrap_or(Ordering::Equal)")
                || (masked.contains("unwrap_or(") && masked.contains("Ordering::Equal"))
        },
    );
}

/// `no-panic-in-engine`: crates on the serving and evaluation paths
/// must never panic on operational input — a poisoned query or a dead
/// worker must surface as a typed error (`EngineError`, `EvalError`),
/// not take the process down. Applies to `crates/engine/src` and
/// `crates/eval/src`.
pub fn no_panic_in_engine(file: &ScannedFile, out: &mut Vec<Finding>) {
    if !file.path.contains("crates/engine/src") && !file.path.contains("crates/eval/src") {
        return;
    }
    const PATTERNS: &[&str] = &["panic!", ".expect(", "unreachable!", "todo!", "unimplemented!"];
    scan_lines(
        file,
        "no-panic-in-engine",
        "potential panic on a no-panic path; return a typed error (EngineError/EvalError)",
        out,
        |masked| PATTERNS.iter().any(|p| masked.contains(p)),
    );
}

/// `no-raw-print-in-lib`: library modules must not write to
/// stdout/stderr directly — diagnostics route through `traj_obs`
/// (events/counters a sink can format or export) or come back as
/// return values the caller renders. Binary targets (`src/bin/`,
/// `main.rs`) own the terminal and are exempt; deliberate CLI output
/// elsewhere carries `// lint: allow(raw-print)`.
pub fn no_raw_print_in_lib(file: &ScannedFile, out: &mut Vec<Finding>) {
    let path = &file.path;
    let in_lib_module = path.contains("crates/")
        && path.contains("/src/")
        && !path.contains("/src/bin/")
        && !path.ends_with("/main.rs");
    if !in_lib_module || RAW_PRINT_ALLOWED.iter().any(|a| a.path == file.path) {
        return;
    }
    const PATTERNS: &[&str] = &["println!", "eprintln!", "print!(", "eprint!("];
    scan_lines(
        file,
        "no-raw-print-in-lib",
        "raw stdout/stderr print in library code; emit a traj_obs event or return the text",
        out,
        |masked| PATTERNS.iter().any(|p| masked.contains(p)),
    );
}

/// `checkpoint-magic-registry`: every container magic (a 4–8 character
/// uppercase-alphanumeric byte-string like `T2HSNAP1`) must be declared
/// in [`crate::registry::KNOWN_MAGICS`], so two serialization formats
/// can never silently claim the same header.
pub fn checkpoint_magic_registry(file: &ScannedFile, out: &mut Vec<Finding>) {
    for lit in &file.byte_literals {
        let looks_like_magic = (4..=8).contains(&lit.value.len())
            && lit.value.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
            && lit.value.chars().any(|c| c.is_ascii_uppercase());
        if !looks_like_magic {
            continue;
        }
        let idx = lit.line - 1;
        if file.lines[idx].in_test
            || KNOWN_MAGICS.contains(&lit.value.as_str())
            || is_allowed(file, idx, "checkpoint-magic-registry")
        {
            continue;
        }
        out.push(Finding {
            rule: "checkpoint-magic-registry",
            path: file.path.clone(),
            line: lit.line,
            snippet: file.lines[idx].raw.trim().to_string(),
            message: format!(
                "container magic b\"{}\" is not declared in the magic registry \
                 (crates/lint/src/registry.rs)",
                lit.value
            ),
        });
    }
}

/// True when `word` occurs in `line` with identifier boundaries on
/// both sides (so the intent for `SEQ` does not match `SEQ_LEN`).
pub(crate) fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// `no-bare-lock`: a `.lock()` / `.read()` / `.write()` call on a
/// `Mutex`/`RwLock` anywhere outside the sanctioned poison-proof
/// helpers in [`LOCK_HELPERS`]. Direct acquisition decides the poison
/// policy ad hoc at every call site — one `.expect("poisoned")` wedges
/// the serving plane the first time a writer panics. Route through the
/// registered helper for the lock family instead.
pub fn no_bare_lock(file: &ScannedFile, out: &mut Vec<Finding>) {
    let tokens = tokenize(file);
    let spans = function_spans(&tokens);
    let helper_names: Vec<&str> = LOCK_HELPERS.iter().map(|h| h.name).collect();
    for acq in acquisitions(&tokens, &helper_names) {
        if acq.kind != AcquireKind::Bare {
            continue;
        }
        let idx = acq.line - 1;
        if file.lines[idx].in_test || is_allowed(file, idx, "no-bare-lock") {
            continue;
        }
        // A registered helper's own body is the one sanctioned home for
        // the bare call — but only in its registered file.
        if let Some(f) = enclosing_fn(&spans, acq.name_token) {
            if LOCK_HELPERS.iter().any(|h| h.name == f.name && h.path == file.path) {
                continue;
            }
        }
        out.push(Finding {
            rule: "no-bare-lock",
            path: file.path.clone(),
            line: acq.line,
            snippet: file.lines[idx].raw.trim().to_string(),
            message: format!(
                "bare .{}() lock acquisition; route through a sanctioned poison-proof \
                 helper (crates/lint/src/registry.rs LOCK_HELPERS)",
                acq.name
            ),
        });
    }
}

/// `no-guard-across-compute`: a lock guard live across a call into a
/// [`COMPUTE_CALLS`] entry point (search/encode/rebuild/snapshot).
/// Holding a publish-cell read guard across a model forward pass stalls
/// the writer — and every other reader queued behind it — for the whole
/// computation, and a panic inside the compute poisons the lock.
/// Snapshot the `Arc` first (`Arc::clone(&rread(..))`), let the guard
/// drop, then compute.
pub fn no_guard_across_compute(file: &ScannedFile, out: &mut Vec<Finding>) {
    let tokens = tokenize(file);
    let spans = function_spans(&tokens);
    let helper_names: Vec<&str> = LOCK_HELPERS.iter().map(|h| h.name).collect();
    for acq in acquisitions(&tokens, &helper_names) {
        let Some(f) = enclosing_fn(&spans, acq.name_token) else { continue };
        let acq_idx = acq.line - 1;
        if file.lines[acq_idx].in_test {
            continue;
        }
        let scope = guard_scope(&tokens, &acq, f.body_open, f.body_close);
        for j in scope.start..=scope.end.min(tokens.len().saturating_sub(1)) {
            let t = &tokens[j];
            if t.kind != TokenKind::Ident
                || !COMPUTE_CALLS.contains(&t.text.as_str())
                || !tokens.get(j + 1).map(|n| n.text == "(").unwrap_or(false)
            {
                continue;
            }
            let call_idx = t.line - 1;
            if is_allowed(file, call_idx, "no-guard-across-compute")
                || is_allowed(file, acq_idx, "no-guard-across-compute")
            {
                continue;
            }
            out.push(Finding {
                rule: "no-guard-across-compute",
                path: file.path.clone(),
                line: t.line,
                snippet: file.lines[call_idx].raw.trim().to_string(),
                message: format!(
                    "guard `{}` (acquired line {}) is live across compute call `{}`; \
                     clone the Arc out and drop the guard before computing",
                    scope.binding, acq.line, t.text
                ),
            });
            break; // one finding per guard keeps the report readable
        }
    }
}

/// Cast targets the `no-lossy-as-cast` rule treats as narrowing. `u64`
/// / `i64` / floats are excluded: widening casts to them cannot lose
/// integer range on any supported platform, while `as usize` (and
/// smaller) truncates silently when a 64-bit length field arrives
/// corrupt.
const NARROW_TARGETS: &[&str] = &["usize", "isize", "u8", "u16", "u32", "i8", "i16", "i32"];

/// `no-lossy-as-cast`: a narrowing `as` cast in library code. `as`
/// silently wraps — a corrupt `u64` length decodes as a small `usize`
/// and the reader misparses the rest of the container instead of
/// erroring. Use `try_into()` with the crate's typed error, or justify
/// a provably-in-range cast with `// lint: allow(lossy-cast)`.
pub fn no_lossy_as_cast(file: &ScannedFile, out: &mut Vec<Finding>) {
    let tokens = tokenize(file);
    let mut last_line = 0usize;
    for (j, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = tokens.get(j + 1) else { continue };
        if target.kind != TokenKind::Ident || !NARROW_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        let idx = t.line - 1;
        if t.line == last_line || file.lines[idx].in_test || is_allowed(file, idx, "no-lossy-as-cast")
        {
            continue;
        }
        last_line = t.line; // one finding per line even with several casts
        out.push(Finding {
            rule: "no-lossy-as-cast",
            path: file.path.clone(),
            line: t.line,
            snippet: file.lines[idx].raw.trim().to_string(),
            message: format!(
                "narrowing `as {}` cast in library code; use try_into() with a typed \
                 error, or justify with lint: allow(lossy-cast)",
                target.text
            ),
        });
    }
}

/// The orderings the `atomic-ordering-registry` rule recognises.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// `atomic-ordering-registry`: every `Ordering::*` use site must match
/// a declared [`ATOMIC_INTENTS`] entry for (file, atomic). An ordering
/// choice is an argument about every other thread in the program; the
/// registry forces that argument to be written down once, reviewed, and
/// kept in sync with the code. Policy: `Relaxed` only for monotone obs
/// counters, `Acquire`/`Release`/`SeqCst` for anything that publishes.
pub fn atomic_ordering_registry(file: &ScannedFile, out: &mut Vec<Finding>) {
    let intents: Vec<_> = ATOMIC_INTENTS.iter().filter(|i| i.path == file.path).collect();
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || !line.masked.contains("Ordering::") {
            continue;
        }
        for ord in ORDERINGS {
            let needle = format!("Ordering::{ord}");
            if !contains_word(&line.masked, &needle) {
                continue;
            }
            if is_allowed(file, idx, "atomic-ordering-registry") {
                continue;
            }
            let matching: Vec<_> =
                intents.iter().filter(|i| contains_word(&line.masked, i.atomic)).collect();
            let message = if matching.is_empty() {
                format!(
                    "Ordering::{ord} on an atomic with no declared intent; add the atomic \
                     to ATOMIC_INTENTS (crates/lint/src/registry.rs) with a rationale"
                )
            } else if matching.iter().any(|i| i.allowed.contains(ord)) {
                continue;
            } else {
                let i = matching[0];
                format!(
                    "Ordering::{ord} is not in the declared intent for `{}` (allowed: {}); \
                     change the code or re-justify the registry entry",
                    i.atomic,
                    i.allowed.join(", ")
                )
            };
            out.push(Finding {
                rule: "atomic-ordering-registry",
                path: file.path.clone(),
                line: idx + 1,
                snippet: line.raw.trim().to_string(),
                message,
            });
        }
    }
}

/// `trace-span-coverage`: every *public* `query*` entry point in
/// `crates/engine` must create or accept a `TraceCtx` (or return the
/// sealed `QueryTrace`) so no query path can silently opt out of
/// per-query tracing. Thin delegating wrappers that never touch a trace
/// type are sanctioned via [`TRACED_ENTRY_POINTS`] — a registry diff,
/// where a reviewer sees the whole coverage story at a glance.
pub fn trace_span_coverage(file: &ScannedFile, out: &mut Vec<Finding>) {
    if !file.path.contains("crates/engine/src") {
        return;
    }
    let tokens = tokenize(file);
    for span in function_spans(&tokens) {
        if !span.name.starts_with("query") {
            continue;
        }
        // Only plain `pub` is a public entry point; `pub(crate)` and
        // private fns are internal plumbing the ctx threads through.
        if span.fn_token == 0 || tokens[span.fn_token - 1].text != "pub" {
            continue;
        }
        let idx = span.start_line - 1;
        if file.lines[idx].in_test || is_allowed(file, idx, "trace-span-coverage") {
            continue;
        }
        let traced = tokens[span.fn_token..=span.body_close].iter().any(|t| {
            t.kind == TokenKind::Ident && (t.text == "TraceCtx" || t.text == "QueryTrace")
        });
        if traced
            || TRACED_ENTRY_POINTS
                .iter()
                .any(|e| e.path == file.path && e.func == span.name)
        {
            continue;
        }
        out.push(Finding {
            rule: "trace-span-coverage",
            path: file.path.clone(),
            line: span.start_line,
            snippet: file.lines[idx].raw.trim().to_string(),
            message: format!(
                "public entry point `{}` neither creates/accepts a TraceCtx nor is \
                 registered as a traced delegate (TRACED_ENTRY_POINTS in \
                 crates/lint/src/registry.rs)",
                span.name
            ),
        });
    }
}

/// Runs every rule applicable to `file`. `lib_crate` gates the
/// unwrap and lossy-cast rules: binaries and dev-tooling crates
/// (bench, lint) may unwrap and cast, library crates may not.
pub fn check_file(file: &ScannedFile, lib_crate: bool, out: &mut Vec<Finding>) {
    no_float_partial_cmp_sort(file, out);
    if lib_crate {
        no_unwrap_in_lib(file, out);
        no_lossy_as_cast(file, out);
    }
    no_silent_clamp(file, out);
    no_panic_in_engine(file, out);
    no_raw_print_in_lib(file, out);
    checkpoint_magic_registry(file, out);
    no_bare_lock(file, out);
    no_guard_across_compute(file, out);
    atomic_ordering_registry(file, out);
    trace_span_coverage(file, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::scan;

    fn findings_for(src: &str, lib_crate: bool) -> Vec<Finding> {
        let file = scan("crates/x/src/lib.rs", src, false);
        let mut out = Vec::new();
        check_file(&file, lib_crate, &mut out);
        out
    }

    #[test]
    fn partial_cmp_is_flagged_outside_tests_and_strings() {
        let hits = findings_for("v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n", false);
        assert!(hits.iter().any(|f| f.rule == "no-float-partial-cmp-sort"));
        assert!(findings_for("let s = \"partial_cmp\";\n", false).is_empty());
        assert!(findings_for("#[cfg(test)]\nmod t {\n fn f() { a.partial_cmp(b); }\n}\n", false)
            .is_empty());
    }

    #[test]
    fn unwrap_rule_respects_crate_kind_and_annotations() {
        let src = "let x = y.unwrap();\n";
        assert!(findings_for(src, true).iter().any(|f| f.rule == "no-unwrap-in-lib"));
        assert!(findings_for(src, false).iter().all(|f| f.rule != "no-unwrap-in-lib"));
        let annotated = "// lint: allow(unwrap) — len checked above\nlet x = y.unwrap();\n";
        assert!(findings_for(annotated, true).is_empty());
        let same_line = "let x = y.unwrap(); // lint: allow(unwrap) infallible\n";
        assert!(findings_for(same_line, true).is_empty());
    }

    #[test]
    fn silent_clamp_is_flagged() {
        let hits =
            findings_for("v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));\n", false);
        assert!(hits.iter().any(|f| f.rule == "no-silent-clamp"));
    }

    #[test]
    fn engine_panic_rule_is_path_scoped() {
        let src = "fn f() { panic!(\"boom\"); }\n";
        for covered in ["crates/engine/src/engine.rs", "crates/eval/src/groundtruth.rs"] {
            let file = scan(covered, src, false);
            let mut out = Vec::new();
            check_file(&file, true, &mut out);
            assert!(out.iter().any(|f| f.rule == "no-panic-in-engine"), "{covered}");
        }
        let other = scan("crates/core/src/lib.rs", src, false);
        let mut out = Vec::new();
        check_file(&other, true, &mut out);
        assert!(out.iter().all(|f| f.rule != "no-panic-in-engine"));
    }

    #[test]
    fn raw_print_rule_is_scoped_to_lib_modules() {
        let src = "fn f() { println!(\"hi\"); }\n";
        assert!(findings_for(src, false).iter().any(|f| f.rule == "no-raw-print-in-lib"));
        for bin_path in ["crates/demo/src/bin/tool.rs", "crates/demo/src/main.rs"] {
            let file = scan(bin_path, src, false);
            let mut out = Vec::new();
            check_file(&file, false, &mut out);
            assert!(out.iter().all(|f| f.rule != "no-raw-print-in-lib"), "{bin_path}");
        }
        let allowed = "// lint: allow(raw-print) — CLI usage text\nfn f() { eprintln!(\"x\"); }\n";
        assert!(findings_for(allowed, false).is_empty());
    }

    #[test]
    fn bare_lock_is_flagged_outside_registered_helpers() {
        let bare = findings_for("fn f(m: &Mutex<u32>) { let g = m.lock(); }\n", false);
        assert!(bare.iter().any(|f| f.rule == "no-bare-lock"));
        let bare_rw = findings_for("fn f(l: &RwLock<u32>) { let g = l.read(); l.write(); }\n", false);
        assert_eq!(bare_rw.iter().filter(|f| f.rule == "no-bare-lock").count(), 2);

        // Helper calls are sanctioned by name anywhere.
        let helper = findings_for("fn f(m: &Mutex<T>) { tlock(m).hits += 1; }\n", false);
        assert!(helper.iter().all(|f| f.rule != "no-bare-lock"));

        // The helper's own body is exempt — but only in its registered file.
        let body = "pub(crate) fn rread<T>(l: &RwLock<T>) -> G<T> {\n    match l.read() {\n        Ok(g) => g,\n        Err(p) => p.into_inner(),\n    }\n}\n";
        let home = scan("crates/engine/src/cell.rs", body, false);
        let mut out = Vec::new();
        no_bare_lock(&home, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let elsewhere = scan("crates/core/src/lib.rs", body, false);
        let mut out = Vec::new();
        no_bare_lock(&elsewhere, &mut out);
        assert_eq!(out.len(), 1, "same body outside the registered file must flag");

        // Annotation suppresses.
        let allowed =
            "fn f(m: &Mutex<u32>) {\n    // lint: allow(bare-lock) — single-threaded init\n    let g = m.lock();\n}\n";
        assert!(findings_for(allowed, false).iter().all(|f| f.rule != "no-bare-lock"));

        // `read` with arguments is IO, not a lock.
        let io = findings_for("fn f(r: &mut File) { r.read(&mut buf); }\n", false);
        assert!(io.iter().all(|f| f.rule != "no-bare-lock"));
    }

    #[test]
    fn guard_across_compute_distinguishes_retained_from_cloned() {
        let bad = "fn f(&self) -> R {\n    let bp = rread(&self.model);\n    let m = bp.instantiate();\n    m\n}\n";
        let hits = findings_for(bad, false);
        let f = hits.iter().find(|f| f.rule == "no-guard-across-compute").expect("must flag");
        assert!(f.message.contains("bp"), "{}", f.message);
        assert!(f.message.contains("instantiate"), "{}", f.message);

        // Method-chained compute on the guard temporary is the same hazard.
        let chained = "fn f(&self) -> R {\n    rread(&self.model).instantiate()\n}\n";
        assert!(findings_for(chained, false).iter().any(|f| f.rule == "no-guard-across-compute"));

        // Clone-then-drop is the sanctioned shape.
        let good = "fn f(&self) -> R {\n    let bp = Arc::clone(&rread(&self.model));\n    let m = bp.instantiate();\n    m\n}\n";
        assert!(
            findings_for(good, false).iter().all(|f| f.rule != "no-guard-across-compute"),
            "cloned Arc must not flag"
        );

        // Explicit drop ends the hazard window.
        let dropped = "fn f(&self) -> R {\n    let g = rwrite(&self.cell);\n    g.touch();\n    drop(g);\n    search(&q)\n}\n";
        assert!(findings_for(dropped, false).iter().all(|f| f.rule != "no-guard-across-compute"));

        // Bare acquisitions are tracked too.
        let bare = "fn f(&self) -> R {\n    let g = self.state.read();\n    search(&g)\n}\n";
        assert!(findings_for(bare, false).iter().any(|f| f.rule == "no-guard-across-compute"));
    }

    #[test]
    fn lossy_cast_flags_narrowing_targets_only_in_lib() {
        let src = "fn f(n: u64) -> usize { n as usize }\n";
        assert!(findings_for(src, true).iter().any(|f| f.rule == "no-lossy-as-cast"));
        assert!(findings_for(src, false).iter().all(|f| f.rule != "no-lossy-as-cast"));

        // Widening targets are fine.
        let wide = "fn f(n: u32) -> u64 { n as u64 }\nfn g(x: f32) -> f64 { x as f64 }\n";
        assert!(findings_for(wide, true).iter().all(|f| f.rule != "no-lossy-as-cast"));

        // One finding per line even with several casts.
        let multi = "fn f(a: u64, b: u64) -> (usize, u32) { (a as usize, b as u32) }\n";
        assert_eq!(
            findings_for(multi, true).iter().filter(|f| f.rule == "no-lossy-as-cast").count(),
            1
        );

        // Annotated sites pass.
        let ok = "fn f(n: u64) -> usize {\n    // lint: allow(lossy-cast) — n < 256, checked above\n    n as usize\n}\n";
        assert!(findings_for(ok, true).iter().all(|f| f.rule != "no-lossy-as-cast"));

        // `as` in a use-rename is not a cast.
        let rename = "use std::io::Result as IoResult;\n";
        assert!(findings_for(rename, true).iter().all(|f| f.rule != "no-lossy-as-cast"));
    }

    #[test]
    fn atomic_ordering_requires_a_declared_intent() {
        // Undeclared atomic: flagged regardless of ordering.
        let undeclared = findings_for("fn f() { HITS.fetch_add(1, Ordering::Relaxed); }\n", false);
        let f = undeclared.iter().find(|f| f.rule == "atomic-ordering-registry").expect("flag");
        assert!(f.message.contains("no declared intent"), "{}", f.message);

        // Declared atomic with a conforming ordering: clean. The obs
        // ACTIVE intent allows Relaxed and SeqCst.
        let obs_ok = scan(
            "crates/obs/src/lib.rs",
            "fn enabled() -> bool { ACTIVE.load(Ordering::Relaxed) != 0 }\n",
            false,
        );
        let mut out = Vec::new();
        atomic_ordering_registry(&obs_ok, &mut out);
        assert!(out.is_empty(), "{out:?}");

        // Declared atomic with a non-conforming ordering: flagged with
        // the allowed set in the message.
        let obs_bad = scan(
            "crates/obs/src/jsonl.rs",
            "fn next() -> u64 { SEQ.fetch_add(1, Ordering::SeqCst) }\n",
            false,
        );
        let mut out = Vec::new();
        atomic_ordering_registry(&obs_bad, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("allowed: Relaxed"), "{}", out[0].message);

        // Ordering::Equal (the cmp enum) is not an atomic ordering.
        let cmp = findings_for("let o = x.cmp(&y) == Ordering::Equal;\n", false);
        assert!(cmp.iter().all(|f| f.rule != "atomic-ordering-registry"));
    }

    #[test]
    fn trace_span_coverage_requires_a_trace_type_or_a_registry_entry() {
        let run = |path: &str, src: &str| -> Vec<Finding> {
            let file = scan(path, src, false);
            let mut out = Vec::new();
            trace_span_coverage(&file, &mut out);
            out
        };
        let engine = "crates/engine/src/newpath.rs";

        // Untraced public query entry point: flagged.
        let bad = "pub fn query_fast(&self, k: usize) -> Vec<Hit> {\n    self.scan(k)\n}\n";
        let hits = run(engine, bad);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].message.contains("query_fast"), "{}", hits[0].message);

        // Creating or accepting a TraceCtx (or returning the sealed
        // QueryTrace) satisfies the rule.
        let ctx = "pub fn query_fast(&self, k: usize) -> Vec<Hit> {\n    let mut t = TraceCtx::new();\n    self.scan(k, &mut t)\n}\n";
        assert!(run(engine, ctx).is_empty());
        let sealed = "pub fn query_traced2(&self) -> (Vec<Hit>, QueryTrace) {\n    self.inner()\n}\n";
        assert!(run(engine, sealed).is_empty());

        // Registered delegates are sanctioned (engine.rs `query` is in
        // TRACED_ENTRY_POINTS).
        let delegate = "pub fn query(&self, k: usize) -> Vec<Hit> {\n    self.query_with_info(k).0\n}\n";
        assert!(run("crates/engine/src/engine.rs", delegate).is_empty());
        // ... but the same body elsewhere still flags.
        assert_eq!(run(engine, delegate).len(), 1);

        // Non-public and non-query functions are out of scope, as is
        // everything outside crates/engine.
        assert!(run(engine, "pub(crate) fn query_inner(&self) -> Vec<Hit> { self.s() }\n")
            .is_empty());
        assert!(run(engine, "pub fn rebuild(&mut self) { self.r() }\n").is_empty());
        assert!(run("crates/core/src/lib.rs", bad).is_empty());

        // Annotation suppresses.
        let allowed = "// lint: allow(trace-span) — bench-only probe\npub fn query_probe(&self) -> usize {\n    self.n()\n}\n";
        assert!(run(engine, allowed).is_empty());
    }

    #[test]
    fn raw_print_registry_exempts_the_ops_server() {
        let src = "fn f() { eprintln!(\"accept failed\"); }\n";
        let allowed = scan("crates/obs/src/serve.rs", src, false);
        let mut out = Vec::new();
        no_raw_print_in_lib(&allowed, &mut out);
        assert!(out.is_empty(), "{out:?}");
        let other = scan("crates/obs/src/lib.rs", src, false);
        let mut out = Vec::new();
        no_raw_print_in_lib(&other, &mut out);
        assert_eq!(out.len(), 1, "unregistered file must still flag");
    }

    #[test]
    fn unknown_magic_is_flagged_known_is_not() {
        let unknown = findings_for("const M: &[u8; 8] = b\"ZZMAGIC9\";\n", false);
        assert!(unknown.iter().any(|f| f.rule == "checkpoint-magic-registry"));
        let known = findings_for("const M: &[u8; 8] = b\"T2HCKPT1\";\n", false);
        assert!(known.iter().all(|f| f.rule != "checkpoint-magic-registry"));
        // short/lowercase byte strings are not magics
        assert!(findings_for("let b = b\"ab\";\n", false).is_empty());
        assert!(findings_for("let b = b\"abcd\";\n", false).is_empty());
    }
}
