//! # traj-lint — repo-specific static analysis for the Traj2Hash workspace
//!
//! A lightweight source lint driver: a character-level scanner
//! ([`source`]) feeds a token-level pass ([`tokens`]: function
//! boundaries, lock-guard scopes) and eleven rules ([`rules`]) that
//! encode invariants this repository has already been burned by —
//! NaN-unsound float sorts, panicking library code, a serving crate
//! that must never take the process down, bare lock acquisitions that
//! decide poison policy ad hoc, guards held across compute,
//! silently-wrapping casts, undeclared atomic orderings, query entry
//! points that dodge per-query tracing, and container magics that must
//! not collide (all centrally declared in [`registry`]).
//!
//! No rustc plugin, no external dependencies: the whole pass runs in
//! milliseconds and works in the fully-offline build environment. The
//! `traj-lint` binary wires it into `./check.sh` as a hard gate; see
//! `DESIGN.md` §10 for the rule catalogue and the allowlist policy.
//!
//! Suppression, in order of preference:
//! 1. fix the finding;
//! 2. annotate a genuinely-false positive in place with
//!    `// lint: allow(<rule-or-alias>) <one-line justification>`;
//! 3. add a `rule<TAB>path<TAB>snippet` entry to `lint.allow` at the
//!    repo root (hard-capped at 20 entries so the escape hatch cannot
//!    become a landfill).

#![warn(missing_docs)]

pub mod registry;
pub mod rules;
pub mod source;
pub mod tokens;

pub use rules::{check_file, Finding, RULES};
pub use source::{scan, ScannedFile};

use std::path::{Path, PathBuf};

/// Maximum `lint.allow` entries before the driver refuses to run: the
/// allowlist is an escape hatch, not a parking lot.
pub const ALLOWLIST_CAP: usize = 20;

/// One `lint.allow` entry: `rule<TAB>path<TAB>snippet`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule identifier the entry suppresses.
    pub rule: String,
    /// Repo-relative path it applies to.
    pub path: String,
    /// Trimmed offending line (line-number-free so entries survive
    /// unrelated edits to the file).
    pub snippet: String,
}

/// The outcome of a full lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Findings that survived the allowlist — these fail the gate.
    pub findings: Vec<Finding>,
    /// Non-fatal observations (stale allowlist entries, unused registry
    /// magics).
    pub warnings: Vec<String>,
    /// Findings suppressed by `lint.allow`.
    pub suppressed: usize,
    /// Files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Errors the driver itself can hit (as opposed to findings it reports).
#[derive(Debug)]
pub enum LintError {
    /// Reading a source or allowlist file failed.
    Io(PathBuf, std::io::Error),
    /// An allowlist line is not `rule<TAB>path<TAB>snippet`.
    MalformedAllowlist {
        /// 1-based line in the allowlist file.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The allowlist exceeds [`ALLOWLIST_CAP`] entries.
    AllowlistOverCap {
        /// Entries found.
        got: usize,
    },
    /// The same `rule<TAB>path<TAB>snippet` entry appears twice.
    DuplicateAllowEntry {
        /// 1-based line of the second occurrence.
        line: usize,
        /// The duplicated entry text.
        text: String,
    },
    /// Entries are not in sorted order, so diffs churn and duplicates
    /// hide. `--fix-list` prints entries pre-sorted; paste them as-is.
    UnsortedAllowlist {
        /// 1-based line of the first out-of-order entry.
        line: usize,
        /// The entry that sorts before its predecessor.
        text: String,
    },
    /// The magic registry itself contains duplicates.
    DuplicateRegistryMagic(String),
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::Io(p, e) => write!(f, "io error on {}: {e}", p.display()),
            LintError::MalformedAllowlist { line, text } => {
                write!(f, "lint.allow line {line} is not rule<TAB>path<TAB>snippet: {text:?}")
            }
            LintError::AllowlistOverCap { got } => write!(
                f,
                "lint.allow has {got} entries, over the cap of {ALLOWLIST_CAP}: fix findings \
                 instead of allowlisting them"
            ),
            LintError::DuplicateAllowEntry { line, text } => {
                write!(f, "lint.allow line {line} duplicates an earlier entry: {text:?}")
            }
            LintError::UnsortedAllowlist { line, text } => {
                write!(
                    f,
                    "lint.allow line {line} is out of sorted order: {text:?} — keep entries \
                     sorted (rule, then path, then snippet); `--fix-list` prints them pre-sorted"
                )
            }
            LintError::DuplicateRegistryMagic(m) => {
                write!(f, "magic registry declares {m:?} twice")
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Parses a `lint.allow` file. Blank lines and `#` comments are
/// ignored; every other line must be `rule<TAB>path<TAB>snippet`.
/// Entries must be unique and in sorted order (rule, then path, then
/// snippet) — duplicates and unsorted files are hard errors so the
/// allowlist stays diffable and duplicate suppressions cannot hide.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, LintError> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut prev_key: Option<(usize, (String, String, String))> = None;
    for (idx, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, '\t');
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(path), Some(snippet)) if !rule.trim().is_empty() => {
                let entry = AllowEntry {
                    rule: rule.trim().to_string(),
                    path: path.trim().to_string(),
                    snippet: snippet.trim().to_string(),
                };
                let key = (entry.rule.clone(), entry.path.clone(), entry.snippet.clone());
                if let Some((_, prev)) = &prev_key {
                    if *prev == key {
                        return Err(LintError::DuplicateAllowEntry {
                            line: idx + 1,
                            text: trimmed.to_string(),
                        });
                    }
                    if *prev > key {
                        // A duplicate of a non-adjacent entry also lands
                        // here: equal keys cannot be sorted apart.
                        let dup = entries.iter().any(|e| {
                            (e.rule.as_str(), e.path.as_str(), e.snippet.as_str())
                                == (key.0.as_str(), key.1.as_str(), key.2.as_str())
                        });
                        if dup {
                            return Err(LintError::DuplicateAllowEntry {
                                line: idx + 1,
                                text: trimmed.to_string(),
                            });
                        }
                        return Err(LintError::UnsortedAllowlist {
                            line: idx + 1,
                            text: trimmed.to_string(),
                        });
                    }
                }
                prev_key = Some((idx + 1, key));
                entries.push(entry);
            }
            _ => {
                return Err(LintError::MalformedAllowlist {
                    line: idx + 1,
                    text: line.to_string(),
                })
            }
        }
    }
    if entries.len() > ALLOWLIST_CAP {
        return Err(LintError::AllowlistOverCap { got: entries.len() });
    }
    Ok(entries)
}

/// Collects the `.rs` files the gate covers: everything under
/// `crates/*/src` and the root meta-crate's `src/`, skipping `vendor/`,
/// `target/`, and lint fixtures.
pub fn default_targets(root: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        for entry in read_dir_sorted(&crates)? {
            let src = entry.join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files)?;
            }
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        walk_rs(&root_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn read_dir_sorted(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let rd = std::fs::read_dir(dir).map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| LintError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    for path in read_dir_sorted(dir)? {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "fixtures") {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether a path belongs to a crate held to the typed-error standard.
/// Dev tooling (`bench`, the linter itself) and non-`src` code are not.
pub fn is_lib_crate_path(rel: &str) -> bool {
    !(rel.starts_with("crates/bench/") || rel.starts_with("crates/lint/"))
}

/// Whether every line of the file is test-exempt by location.
pub fn is_test_path(rel: &str) -> bool {
    ["tests/", "benches/", "examples/", "fixtures/"]
        .iter()
        .any(|d| rel.contains(d))
}

/// Runs all rules over `files` (absolute paths, reported relative to
/// `root`), applies `allow`, and cross-checks the magic registry.
pub fn run(root: &Path, files: &[PathBuf], allow: &[AllowEntry]) -> Result<LintReport, LintError> {
    if let Some(dup) = registry::registry_duplicates().first() {
        return Err(LintError::DuplicateRegistryMagic(dup.to_string()));
    }
    let mut report = LintReport::default();
    let mut raw_findings: Vec<Finding> = Vec::new();
    let mut seen_magics: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut intent_seen = vec![false; registry::ATOMIC_INTENTS.len()];
    let mut helper_seen = vec![false; registry::LOCK_HELPERS.len()];
    let mut print_seen = vec![false; registry::RAW_PRINT_ALLOWED.len()];
    let mut traced_seen = vec![false; registry::TRACED_ENTRY_POINTS.len()];

    for file in files {
        let text =
            std::fs::read_to_string(file).map_err(|e| LintError::Io(file.clone(), e))?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let scanned = scan(&rel, &text, is_test_path(&rel));
        for lit in &scanned.byte_literals {
            seen_magics.insert(lit.value.clone());
        }
        for (i, intent) in registry::ATOMIC_INTENTS.iter().enumerate() {
            if intent.path == rel
                && scanned.lines.iter().any(|l| rules::contains_word(&l.masked, intent.atomic))
            {
                intent_seen[i] = true;
            }
        }
        for (i, helper) in registry::LOCK_HELPERS.iter().enumerate() {
            let decl = format!("fn {}", helper.name);
            if helper.path == rel
                && scanned.lines.iter().any(|l| rules::contains_word(&l.masked, &decl))
            {
                helper_seen[i] = true;
            }
        }
        for (i, allow) in registry::RAW_PRINT_ALLOWED.iter().enumerate() {
            const PRINTS: &[&str] = &["println!", "eprintln!", "print!(", "eprint!("];
            if allow.path == rel
                && scanned.lines.iter().any(|l| PRINTS.iter().any(|p| l.masked.contains(p)))
            {
                print_seen[i] = true;
            }
        }
        for (i, entry) in registry::TRACED_ENTRY_POINTS.iter().enumerate() {
            let decl = format!("fn {}", entry.func);
            if entry.path == rel
                && scanned.lines.iter().any(|l| rules::contains_word(&l.masked, &decl))
            {
                traced_seen[i] = true;
            }
        }
        check_file(&scanned, is_lib_crate_path(&rel), &mut raw_findings);
        report.files_scanned += 1;
    }

    // Registry hygiene: a declared magic nothing writes any more is a
    // stale entry worth a look (warning, not failure — the magic may be
    // kept for backwards-compatible readers). Likewise a lock helper or
    // atomic intent whose code has moved or vanished. Fixture pins
    // (crates/demo/…) are never scanned and are exempt.
    for magic in registry::KNOWN_MAGICS {
        if !seen_magics.contains(*magic) {
            report
                .warnings
                .push(format!("registry magic {magic:?} does not appear in any scanned file"));
        }
    }
    for (intent, seen) in registry::ATOMIC_INTENTS.iter().zip(&intent_seen) {
        if !seen && !intent.path.starts_with(registry::FIXTURE_PATH_PREFIX) {
            report.warnings.push(format!(
                "stale atomic intent: `{}` is not used in {}",
                intent.atomic, intent.path
            ));
        }
    }
    for (helper, seen) in registry::LOCK_HELPERS.iter().zip(&helper_seen) {
        if !seen && !helper.path.starts_with(registry::FIXTURE_PATH_PREFIX) {
            report.warnings.push(format!(
                "stale lock helper: `fn {}` is not defined in {}",
                helper.name, helper.path
            ));
        }
    }
    for (allow, seen) in registry::RAW_PRINT_ALLOWED.iter().zip(&print_seen) {
        if !seen && !allow.path.starts_with(registry::FIXTURE_PATH_PREFIX) {
            report.warnings.push(format!(
                "stale raw-print allowance: {} contains no print macro",
                allow.path
            ));
        }
    }
    for (entry, seen) in registry::TRACED_ENTRY_POINTS.iter().zip(&traced_seen) {
        if !seen && !entry.path.starts_with(registry::FIXTURE_PATH_PREFIX) {
            report.warnings.push(format!(
                "stale traced entry point: `fn {}` is not defined in {}",
                entry.func, entry.path
            ));
        }
    }

    // Allowlist application + staleness tracking.
    let mut used = vec![false; allow.len()];
    for finding in raw_findings {
        let matched = allow.iter().enumerate().find(|(_, e)| {
            e.rule == finding.rule && e.path == finding.path && e.snippet == finding.snippet
        });
        match matched {
            Some((i, _)) => {
                used[i] = true;
                report.suppressed += 1;
            }
            None => report.findings.push(finding),
        }
    }
    for (entry, used) in allow.iter().zip(&used) {
        if !used {
            report.warnings.push(format!(
                "stale lint.allow entry: {}\t{}\t{}",
                entry.rule, entry.path, entry.snippet
            ));
        }
    }
    report.findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
    });
    Ok(report)
}

/// The `--fix-list` rendering of a finding: a ready-to-paste
/// `lint.allow` entry.
pub fn fix_list_entry(f: &Finding) -> String {
    format!("{}\t{}\t{}", f.rule, f.path, f.snippet)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_caps() {
        let entries = parse_allowlist(
            "# comment\n\nno-unwrap-in-lib\tcrates/x/src/lib.rs\tlet x = y.unwrap();\n",
        )
        .unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "no-unwrap-in-lib");

        assert!(matches!(
            parse_allowlist("just one field\n"),
            Err(LintError::MalformedAllowlist { line: 1, .. })
        ));

        let over: String =
            (0..21).map(|i| format!("r\tp{i:02}\ts\n")).collect();
        assert!(matches!(
            parse_allowlist(&over),
            Err(LintError::AllowlistOverCap { got: 21 })
        ));
    }

    #[test]
    fn allowlist_rejects_duplicates_with_the_offending_line() {
        // Adjacent duplicate.
        let err = parse_allowlist("ruleA\tsrc/a.rs\tsnippet\nruleA\tsrc/a.rs\tsnippet\n")
            .expect_err("duplicate must be rejected");
        assert!(matches!(&err, LintError::DuplicateAllowEntry { line: 2, .. }), "{err}");
        assert!(err.to_string().contains("duplicates an earlier entry"));

        // Non-adjacent duplicate (necessarily unsorted) is still
        // reported as a duplicate, not merely as unsorted.
        let err = parse_allowlist(
            "ruleA\tsrc/a.rs\tx\nruleB\tsrc/b.rs\ty\nruleA\tsrc/a.rs\tx\n",
        )
        .expect_err("non-adjacent duplicate must be rejected");
        assert!(matches!(err, LintError::DuplicateAllowEntry { line: 3, .. }));
    }

    #[test]
    fn allowlist_rejects_unsorted_entries_with_guidance() {
        let err = parse_allowlist("ruleB\tsrc/b.rs\ty\nruleA\tsrc/a.rs\tx\n")
            .expect_err("unsorted must be rejected");
        assert!(matches!(&err, LintError::UnsortedAllowlist { line: 2, .. }), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("out of sorted order"), "{msg}");
        assert!(msg.contains("--fix-list"), "diagnostic must point at the fix: {msg}");

        // Comments and blank lines between entries do not confuse the
        // order check, and a properly sorted file parses.
        let ok = parse_allowlist(
            "# header\nruleA\tsrc/a.rs\tx\n\n# note\nruleA\tsrc/b.rs\ty\nruleB\tsrc/a.rs\tz\n",
        )
        .expect("sorted file parses");
        assert_eq!(ok.len(), 3);
    }

    #[test]
    fn driver_end_to_end_on_temp_tree() {
        let dir = std::env::temp_dir().join(format!("traj_lint_e2e_{}", std::process::id()));
        let src = dir.join("crates/demo/src");
        std::fs::create_dir_all(&src).unwrap();
        std::fs::write(
            src.join("lib.rs"),
            "pub fn f(v: &mut Vec<f64>) {\n    v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
        )
        .unwrap();
        let files = default_targets(&dir).unwrap();
        assert_eq!(files.len(), 1);

        // Ungated: both the sort rule and the unwrap rule fire.
        let report = run(&dir, &files, &[]).unwrap();
        assert!(!report.is_clean());
        let rules: Vec<&str> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&"no-float-partial-cmp-sort"));
        assert!(rules.contains(&"no-unwrap-in-lib"));

        // Allowlisting one finding suppresses exactly that finding.
        let entry = AllowEntry {
            rule: "no-unwrap-in-lib".into(),
            path: "crates/demo/src/lib.rs".into(),
            snippet: "v.sort_by(|a, b| a.partial_cmp(b).unwrap());".into(),
        };
        let report = run(&dir, &files, std::slice::from_ref(&entry)).unwrap();
        assert_eq!(report.suppressed, 1);
        assert!(report.findings.iter().all(|f| f.rule != "no-unwrap-in-lib"));

        // A stale entry (nothing matches) is a warning, not a failure.
        let stale = AllowEntry { rule: "no-silent-clamp".into(), path: "nope.rs".into(), snippet: "x".into() };
        let report = run(&dir, &files, &[stale]).unwrap();
        assert!(report.warnings.iter().any(|w| w.contains("stale lint.allow entry")));

        std::fs::remove_dir_all(&dir).ok();
    }
}
