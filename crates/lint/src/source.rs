//! Rust source scanning: a small character-level lexer that separates
//! code from comments and literals, so the rules in [`crate::rules`]
//! can pattern-match on *code* without a full parser.
//!
//! For every line of a file the scanner produces:
//!
//! * `masked` — the line with comment text and string/char literal
//!   *contents* replaced by spaces (delimiters kept), so `"partial_cmp"`
//!   inside a doc string never triggers the float-ordering rule;
//! * `comment` — the concatenated comment text on that line, which is
//!   where `// lint: allow(...)` annotations live;
//! * `in_test` — whether the line sits inside a `#[cfg(test)]` item
//!   (detected by brace matching on the masked text).
//!
//! Byte-string literals are additionally collected with their contents
//! and line numbers for the container-magic registry rule.
//!
//! The lexer understands line and nested block comments, string, raw
//! string (`r#"..."#`), byte-string, raw byte-string, and char literals,
//! and disambiguates lifetimes (`'a`) from char literals by look-ahead —
//! the usual traps for a token-level scanner.

/// One scanned line.
#[derive(Debug, Clone)]
pub struct Line {
    /// Original text (without the trailing newline).
    pub raw: String,
    /// Code-only view: comments and literal contents blanked.
    pub masked: String,
    /// Comment text found on this line (empty if none).
    pub comment: String,
    /// True inside a `#[cfg(test)]` region or in a test-only file.
    pub in_test: bool,
}

/// A byte-string literal found in code (not in comments).
#[derive(Debug, Clone)]
pub struct ByteLiteral {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// Literal contents, unescaped only trivially (escapes are kept
    /// verbatim — registry magics never contain escapes).
    pub value: String,
}

/// A fully scanned source file.
#[derive(Debug, Clone)]
pub struct ScannedFile {
    /// Path as reported in diagnostics (repo-relative).
    pub path: String,
    /// Per-line views, index 0 = line 1.
    pub lines: Vec<Line>,
    /// Byte-string literals in code position.
    pub byte_literals: Vec<ByteLiteral>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    ByteStr,
    RawByteStr(u32),
    Char,
}

/// Scans `text` (the contents of `path`). `whole_file_test` marks every
/// line as test-exempt — used for `tests/`, `benches/`, `examples/`,
/// and fixture files.
pub fn scan(path: &str, text: &str, whole_file_test: bool) -> ScannedFile {
    let mut lines: Vec<Line> = Vec::new();
    let mut byte_literals: Vec<ByteLiteral> = Vec::new();

    let mut state = State::Code;
    let mut current_literal: Option<(usize, String)> = None;

    for (idx, raw_line) in text.lines().enumerate() {
        let chars: Vec<char> = raw_line.chars().collect();
        let mut masked = String::with_capacity(raw_line.len());
        let mut comment = String::new();
        // A line comment never crosses a newline.
        if state == State::LineComment {
            state = State::Code;
        }
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            let next = chars.get(i + 1).copied();
            match state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        state = State::LineComment;
                        comment.push_str(&raw_line[char_byte_offset(&chars, i)..]);
                        masked.push_str(&" ".repeat(chars.len() - i));
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::BlockComment(1);
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '"' => {
                        state = State::Str;
                        masked.push('"');
                    }
                    'r' if matches!(next, Some('"') | Some('#')) && raw_prefix(&chars, i + 1).is_some() => {
                        let hashes = raw_prefix(&chars, i + 1).unwrap_or(0);
                        state = State::RawStr(hashes);
                        let consumed = 1 + hashes as usize + 1; // r, #s, quote
                        masked.push_str(&" ".repeat(consumed));
                        i += consumed;
                        continue;
                    }
                    'b' if next == Some('"') => {
                        state = State::ByteStr;
                        current_literal = Some((idx + 1, String::new()));
                        masked.push_str("b\"");
                        i += 2;
                        continue;
                    }
                    'b' if next == Some('r') && raw_prefix(&chars, i + 2).is_some() => {
                        let hashes = raw_prefix(&chars, i + 2).unwrap_or(0);
                        state = State::RawByteStr(hashes);
                        current_literal = Some((idx + 1, String::new()));
                        let consumed = 2 + hashes as usize + 1;
                        masked.push_str(&" ".repeat(consumed));
                        i += consumed;
                        continue;
                    }
                    'b' if next == Some('\'') => {
                        // byte char literal b'x'
                        state = State::Char;
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    '\'' => {
                        // Lifetime or char literal? A lifetime is `'ident`
                        // NOT followed by a closing quote; `'a'` is a char.
                        if is_char_literal(&chars, i) {
                            state = State::Char;
                            masked.push(' ');
                        } else {
                            masked.push('\'');
                        }
                    }
                    _ => masked.push(c),
                },
                State::LineComment => unreachable!("consumed to end of line"),
                State::BlockComment(depth) => {
                    if c == '*' && next == Some('/') {
                        if depth == 1 {
                            state = State::Code;
                        } else {
                            state = State::BlockComment(depth - 1);
                        }
                        comment.push(' ');
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    } else if c == '/' && next == Some('*') {
                        state = State::BlockComment(depth + 1);
                        comment.push(' ');
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    comment.push(c);
                    masked.push(' ');
                }
                State::Str | State::ByteStr => {
                    if c == '\\' {
                        if let Some((_, buf)) = &mut current_literal {
                            buf.push(c);
                            if let Some(n) = next {
                                buf.push(n);
                            }
                        }
                        masked.push(' ');
                        if next.is_some() {
                            masked.push(' ');
                            i += 2;
                            continue;
                        }
                    } else if c == '"' {
                        if state == State::ByteStr {
                            if let Some((line, value)) = current_literal.take() {
                                byte_literals.push(ByteLiteral { line, value });
                            }
                        }
                        state = State::Code;
                        masked.push('"');
                    } else {
                        if let Some((_, buf)) = &mut current_literal {
                            buf.push(c);
                        }
                        masked.push(' ');
                    }
                }
                State::RawStr(hashes) | State::RawByteStr(hashes) => {
                    if c == '"' && closes_raw(&chars, i + 1, hashes) {
                        if matches!(state, State::RawByteStr(_)) {
                            if let Some((line, value)) = current_literal.take() {
                                byte_literals.push(ByteLiteral { line, value });
                            }
                        }
                        state = State::Code;
                        let consumed = 1 + hashes as usize;
                        masked.push_str(&" ".repeat(consumed));
                        i += consumed;
                        continue;
                    }
                    if let Some((_, buf)) = &mut current_literal {
                        buf.push(c);
                    }
                    masked.push(' ');
                }
                State::Char => {
                    if c == '\\' && next.is_some() {
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    masked.push(' ');
                    if c == '\'' {
                        state = State::Code;
                    }
                }
            }
            i += 1;
        }
        // Unterminated single-line states fall back to code at EOL (a
        // char literal or plain string cannot span lines in valid Rust).
        if matches!(state, State::Str | State::ByteStr | State::Char) {
            state = State::Code;
            current_literal = None;
        }
        lines.push(Line { raw: raw_line.to_string(), masked, comment, in_test: whole_file_test });
    }

    let mut file = ScannedFile { path: path.to_string(), lines, byte_literals };
    if !whole_file_test {
        mark_test_regions(&mut file);
    }
    file
}

/// Byte offset of char index `i` within the line the chars came from.
fn char_byte_offset(chars: &[char], i: usize) -> usize {
    chars[..i].iter().map(|c| c.len_utf8()).sum()
}

/// If position `from` starts `#*"` (zero or more hashes then a quote),
/// returns the hash count — the raw-string delimiter arity.
fn raw_prefix(chars: &[char], from: usize) -> Option<u32> {
    let mut hashes = 0u32;
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// True when `hashes` `#` characters follow position `from` — the
/// closing delimiter of a raw string with that arity.
fn closes_raw(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime) at
/// the opening quote position.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Marks every line belonging to a `#[cfg(test)]` item as test code by
/// brace-matching on the masked text: from the attribute, the region
/// extends to the matching `}` of the first `{` that follows (or to the
/// first `;` for brace-less items like `use`).
fn mark_test_regions(file: &mut ScannedFile) {
    let n = file.lines.len();
    let mut start = 0usize;
    while start < n {
        let Some(attr_line) = (start..n).find(|&l| file.lines[l].masked.contains("#[cfg(test)]"))
        else {
            break;
        };
        let mut depth = 0i64;
        let mut opened = false;
        let mut end = attr_line;
        'outer: for (l, line) in file.lines.iter().enumerate().take(n).skip(attr_line) {
            let col0 = if l == attr_line {
                // Search after the attribute itself.
                line.masked.find("#[cfg(test)]").map(|p| p + "#[cfg(test)]".len()).unwrap_or(0)
            } else {
                0
            };
            for ch in line.masked[col0..].chars() {
                match ch {
                    '{' => {
                        opened = true;
                        depth += 1;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = l;
                            break 'outer;
                        }
                    }
                    ';' if !opened => {
                        end = l;
                        break 'outer;
                    }
                    _ => {}
                }
            }
            end = l;
        }
        for line in &mut file.lines[attr_line..=end] {
            line.in_test = true;
        }
        start = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_masked() {
        let f = scan(
            "x.rs",
            "let a = \"partial_cmp\"; // unwrap() here\nlet b = 1; /* unwrap() */ let c = 2;\n",
            false,
        );
        assert!(!f.lines[0].masked.contains("partial_cmp"));
        assert!(!f.lines[0].masked.contains("unwrap"));
        assert!(f.lines[0].comment.contains("unwrap() here"));
        assert!(!f.lines[1].masked.contains("unwrap"));
        assert!(f.lines[1].masked.contains("let c = 2;"));
    }

    #[test]
    fn multiline_block_comments_and_raw_strings() {
        let src = "/* start\nstill comment unwrap()\n*/ let x = r#\"un\"wrap()\"#;\nlet y = 3;\n";
        let f = scan("x.rs", src, false);
        assert!(!f.lines[1].masked.contains("unwrap"));
        assert!(!f.lines[2].masked.contains("wrap"));
        assert!(f.lines[3].masked.contains("let y = 3;"));
    }

    #[test]
    fn byte_literals_are_collected_with_lines() {
        let src = "const M: &[u8; 8] = b\"T2HCKPT1\";\n// b\"NOTAMAGIC\" in comment\n";
        let f = scan("x.rs", src, false);
        assert_eq!(f.byte_literals.len(), 1);
        assert_eq!(f.byte_literals[0].value, "T2HCKPT1");
        assert_eq!(f.byte_literals[0].line, 1);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("x.rs", "fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = 'x';\n", false);
        assert!(f.lines[0].masked.contains("fn f<'a>"), "{}", f.lines[0].masked);
        assert!(!f.lines[1].masked.contains('x') || !f.lines[1].masked.contains("'x'"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "\
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn prod2() {}
";
        let f = scan("x.rs", src, false);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test);
        assert!(!f.lines[5].in_test);
    }

    #[test]
    fn whole_file_test_flag() {
        let f = scan("tests/x.rs", "fn t() { y.unwrap(); }\n", true);
        assert!(f.lines[0].in_test);
    }
}
