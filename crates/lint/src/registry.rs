//! The container-magic registry: the single place every on-disk format
//! header used anywhere in the workspace must be declared.
//!
//! The `checkpoint-magic-registry` rule flags any magic-shaped
//! byte-string literal (4–8 uppercase/digit characters) that is not
//! listed here, so two serialization formats can never silently claim
//! the same header — and so a reader of this file sees every format the
//! repo can produce at a glance.

/// Every known container magic, with its owning format:
///
/// | magic      | format                                             |
/// |------------|----------------------------------------------------|
/// | `TNN1`     | `tinynn` parameter values blob                     |
/// | `TNS1`     | `tinynn` parameter + optimizer state blob          |
/// | `T2HCKPT1` | training checkpoint (`traj2hash::checkpoint`)      |
/// | `T2HSNAP1` | engine snapshot (`traj_engine::snapshot`)          |
pub const KNOWN_MAGICS: &[&str] = &["TNN1", "TNS1", "T2HCKPT1", "T2HSNAP1"];

/// Duplicate entries would defeat the whole point of the registry; the
/// driver checks this on every run (and the test below pins it).
pub fn registry_duplicates() -> Vec<&'static str> {
    let mut seen = std::collections::HashSet::new();
    KNOWN_MAGICS.iter().filter(|m| !seen.insert(**m)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        assert!(registry_duplicates().is_empty());
    }

    #[test]
    fn registry_entries_look_like_magics() {
        for m in KNOWN_MAGICS {
            assert!((4..=8).contains(&m.len()), "{m}");
            assert!(m.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()), "{m}");
        }
    }
}
