//! The workspace invariant registries: the single place every on-disk
//! format header, sanctioned lock helper, compute boundary, and atomic
//! ordering intent used anywhere in the workspace must be declared.
//!
//! Four tables live here:
//!
//! * [`KNOWN_MAGICS`] — container magics, backing the
//!   `checkpoint-magic-registry` rule;
//! * [`LOCK_HELPERS`] — the poison-proof lock-acquisition helpers,
//!   backing `no-bare-lock`: only these functions may call
//!   `.lock()`/`.read()`/`.write()` directly, and only in their
//!   registered file;
//! * [`COMPUTE_CALLS`] — the heavy compute/IO entry points a lock guard
//!   must never be held across, backing `no-guard-across-compute`;
//! * [`ATOMIC_INTENTS`] — the declared memory-ordering policy for every
//!   atomic in the workspace, backing `atomic-ordering-registry`.
//!
//! Declaring intent centrally is the point: a new lock helper, a new
//! atomic, or a stronger ordering shows up as a diff *to this file*,
//! where a reviewer sees the whole concurrency story at a glance.

/// Every known container magic, with its owning format:
///
/// | magic      | format                                             |
/// |------------|----------------------------------------------------|
/// | `TNN1`     | `tinynn` parameter values blob                     |
/// | `TNS1`     | `tinynn` parameter + optimizer state blob          |
/// | `T2HCKPT1` | training checkpoint (`traj2hash::checkpoint`)      |
/// | `T2HSNAP1` | engine snapshot (`traj_engine::snapshot`)          |
pub const KNOWN_MAGICS: &[&str] = &["TNN1", "TNS1", "T2HCKPT1", "T2HSNAP1"];

/// A sanctioned poison-proof lock helper: the only functions allowed to
/// call `.lock()` / `.read()` / `.write()` on a `Mutex`/`RwLock`
/// directly. Each helper owns the poison-recovery decision for exactly
/// one lock family, so a panicking writer can never wedge the rest of
/// the process by accident of `.unwrap()`-on-`PoisonError`.
#[derive(Debug, Clone, Copy)]
pub struct LockHelper {
    /// Repo-relative file the helper is defined in — bare lock calls
    /// are exempt only inside this file's function of that name.
    pub path: &'static str,
    /// The helper's function name; calling it anywhere is sanctioned.
    pub name: &'static str,
    /// One-line rationale: what lock it guards and why poison recovery
    /// is sound there.
    pub why: &'static str,
}

/// The sanctioned-helper registry (the `no-bare-lock` rule's ground
/// truth). Paths under `crates/demo/` are the lint fixture namespace —
/// they never exist in the repo and are exempt from staleness checks.
pub const LOCK_HELPERS: &[LockHelper] = &[
    LockHelper {
        path: "crates/engine/src/cell.rs",
        name: "rread",
        why: "publish-cell RwLock read; the Arc inside a poisoned guard is still a valid \
              published state, so recovery serves it",
    },
    LockHelper {
        path: "crates/engine/src/cell.rs",
        name: "rwrite",
        why: "publish-cell RwLock write; a poisoned cell still holds the last published \
              Arc, so the next writer may replace it",
    },
    LockHelper {
        path: "crates/engine/src/engine.rs",
        name: "tlock",
        why: "telemetry Mutex; counters are plain integers, valid after any panic",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "olock",
        why: "recorder-internal Mutex; sink buffers stay structurally valid after a \
              panicking append",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "gread",
        why: "GLOBAL recorder RwLock read; a poisoned global still names a usable \
              recorder Arc",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "gwrite",
        why: "GLOBAL recorder RwLock write; install/uninstall may proceed after a \
              poisoned reader",
    },
    LockHelper {
        path: "crates/tinynn/src/sync.rs",
        name: "cread",
        why: "memo-cache RwLock read; caches hold pure recomputable values, poison \
              cannot corrupt them",
    },
    LockHelper {
        path: "crates/tinynn/src/sync.rs",
        name: "cwrite",
        why: "memo-cache RwLock write; worst case after poison is a redundant recompute",
    },
];

/// Heavy compute / IO entry points a lock guard must never be live
/// across (the `no-guard-across-compute` rule): holding a publish-cell
/// or telemetry guard across any of these stalls every reader behind
/// a long computation and widens the poison blast radius to the whole
/// serving plane. Snapshot first (`Arc::clone(&rread(..))`), drop the
/// guard, then compute.
pub const COMPUTE_CALLS: &[&str] = &[
    "search",
    "embed",
    "embed_batch",
    "embed_all",
    "embed_all_with_threads",
    "rebuilt",
    "rebuild_shard",
    "instantiate",
    "encode_view",
    "decode_parts",
    "snapshot_bytes",
    "from_spec",
];

/// A declared memory-ordering policy for one atomic.
#[derive(Debug, Clone, Copy)]
pub struct AtomicIntent {
    /// Repo-relative file the atomic's operations live in.
    pub path: &'static str,
    /// The atomic's identifier (field or static name) as it appears at
    /// the use sites.
    pub atomic: &'static str,
    /// Orderings permitted at those sites.
    pub allowed: &'static [&'static str],
    /// One-line rationale for the policy.
    pub why: &'static str,
}

/// The atomic-ordering intent table (the `atomic-ordering-registry`
/// rule's ground truth). Policy: `Relaxed` only for monotone
/// observability counters whose values carry no synchronization
/// meaning; anything that publishes state other threads then read
/// must use `Acquire`/`Release` pairs or `SeqCst`. Entries under
/// `crates/demo/` are lint fixture pins (that namespace never exists
/// in the repo) and are exempt from staleness checks.
pub const ATOMIC_INTENTS: &[AtomicIntent] = &[
    AtomicIntent {
        path: "crates/obs/src/lib.rs",
        atomic: "ACTIVE",
        allowed: &["Relaxed", "SeqCst"],
        why: "Relaxed for the enabled() fast-path load (stale reads only cost one \
              recorded/unrecorded event); SeqCst on install/uninstall so the count \
              totally orders with GLOBAL swaps",
    },
    AtomicIntent {
        path: "crates/obs/src/jsonl.rs",
        atomic: "SEQ",
        allowed: &["Relaxed"],
        why: "unique-suffix counter for export file names; uniqueness needs atomicity, \
              not ordering",
    },
    AtomicIntent {
        path: "crates/obs/src/memory.rs",
        atomic: "records",
        allowed: &["Relaxed"],
        why: "monotone record counter in the obs fast path; read only for reporting",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "attempts",
        allowed: &["Relaxed"],
        why: "fault-injection attempt counter; test-harness statistics only",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "injected",
        allowed: &["Relaxed"],
        why: "fault-injection hit counter; test-harness statistics only",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "TMP_COUNTER",
        allowed: &["Relaxed"],
        why: "unique temp-file suffix; uniqueness needs atomicity, not ordering",
    },
    AtomicIntent {
        path: "crates/demo/src/fail.rs",
        atomic: "DEMO_HITS",
        allowed: &["Relaxed"],
        why: "lint fixture pin: exercises the declared-but-wrong-ordering diagnostic",
    },
    AtomicIntent {
        path: "crates/demo/src/pass.rs",
        atomic: "DEMO_HITS",
        allowed: &["Relaxed"],
        why: "lint fixture pin: exercises the declared-and-conforming path",
    },
];

/// The lint fixture namespace: registry entries under this prefix pin
/// fixture behaviour and are exempt from staleness warnings.
pub const FIXTURE_PATH_PREFIX: &str = "crates/demo/";

/// Duplicate entries would defeat the whole point of the registry; the
/// driver checks this on every run (and the test below pins it).
pub fn registry_duplicates() -> Vec<&'static str> {
    let mut seen = std::collections::HashSet::new();
    KNOWN_MAGICS.iter().filter(|m| !seen.insert(**m)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        assert!(registry_duplicates().is_empty());
    }

    #[test]
    fn registry_entries_look_like_magics() {
        for m in KNOWN_MAGICS {
            assert!((4..=8).contains(&m.len()), "{m}");
            assert!(m.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()), "{m}");
        }
    }

    #[test]
    fn lock_helpers_are_unique_by_name_and_carry_rationale() {
        let mut seen = std::collections::HashSet::new();
        for h in LOCK_HELPERS {
            assert!(seen.insert(h.name), "helper name {} registered twice", h.name);
            assert!(!h.why.trim().is_empty(), "{}: empty rationale", h.name);
            assert!(h.path.starts_with("crates/"), "{}: odd path {}", h.name, h.path);
        }
    }

    #[test]
    fn atomic_intents_are_unique_per_site_and_use_real_orderings() {
        const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
        let mut seen = std::collections::HashSet::new();
        for i in ATOMIC_INTENTS {
            assert!(seen.insert((i.path, i.atomic)), "{}:{} declared twice", i.path, i.atomic);
            assert!(!i.allowed.is_empty(), "{}: empty allowed set", i.atomic);
            for o in i.allowed {
                assert!(ORDERINGS.contains(o), "{}: unknown ordering {o}", i.atomic);
            }
            assert!(!i.why.trim().is_empty(), "{}: empty rationale", i.atomic);
        }
    }

    #[test]
    fn compute_calls_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in COMPUTE_CALLS {
            assert!(seen.insert(*c), "compute call {c} listed twice");
        }
    }
}
