//! The workspace invariant registries: the single place every on-disk
//! format header, sanctioned lock helper, compute boundary, and atomic
//! ordering intent used anywhere in the workspace must be declared.
//!
//! Six tables live here:
//!
//! * [`KNOWN_MAGICS`] — container magics, backing the
//!   `checkpoint-magic-registry` rule;
//! * [`LOCK_HELPERS`] — the poison-proof lock-acquisition helpers,
//!   backing `no-bare-lock`: only these functions may call
//!   `.lock()`/`.read()`/`.write()` directly, and only in their
//!   registered file;
//! * [`COMPUTE_CALLS`] — the heavy compute/IO entry points a lock guard
//!   must never be held across, backing `no-guard-across-compute`;
//! * [`ATOMIC_INTENTS`] — the declared memory-ordering policy for every
//!   atomic in the workspace, backing `atomic-ordering-registry`;
//! * [`RAW_PRINT_ALLOWED`] — the library files sanctioned to print to
//!   stdout/stderr directly, backing `no-raw-print-in-lib`;
//! * [`TRACED_ENTRY_POINTS`] — the `query*` entry points sanctioned
//!   without a visible trace type in their span, backing
//!   `trace-span-coverage`.
//!
//! Declaring intent centrally is the point: a new lock helper, a new
//! atomic, or a stronger ordering shows up as a diff *to this file*,
//! where a reviewer sees the whole concurrency story at a glance.

/// Every known container magic, with its owning format:
///
/// | magic      | format                                             |
/// |------------|----------------------------------------------------|
/// | `TNN1`     | `tinynn` parameter values blob                     |
/// | `TNS1`     | `tinynn` parameter + optimizer state blob          |
/// | `T2HCKPT1` | training checkpoint (`traj2hash::checkpoint`)      |
/// | `T2HSNAP1` | engine snapshot (`traj_engine::snapshot`)          |
pub const KNOWN_MAGICS: &[&str] = &["TNN1", "TNS1", "T2HCKPT1", "T2HSNAP1"];

/// A sanctioned poison-proof lock helper: the only functions allowed to
/// call `.lock()` / `.read()` / `.write()` on a `Mutex`/`RwLock`
/// directly. Each helper owns the poison-recovery decision for exactly
/// one lock family, so a panicking writer can never wedge the rest of
/// the process by accident of `.unwrap()`-on-`PoisonError`.
#[derive(Debug, Clone, Copy)]
pub struct LockHelper {
    /// Repo-relative file the helper is defined in — bare lock calls
    /// are exempt only inside this file's function of that name.
    pub path: &'static str,
    /// The helper's function name; calling it anywhere is sanctioned.
    pub name: &'static str,
    /// One-line rationale: what lock it guards and why poison recovery
    /// is sound there.
    pub why: &'static str,
}

/// The sanctioned-helper registry (the `no-bare-lock` rule's ground
/// truth). Paths under `crates/demo/` are the lint fixture namespace —
/// they never exist in the repo and are exempt from staleness checks.
pub const LOCK_HELPERS: &[LockHelper] = &[
    LockHelper {
        path: "crates/engine/src/cell.rs",
        name: "rread",
        why: "publish-cell RwLock read; the Arc inside a poisoned guard is still a valid \
              published state, so recovery serves it",
    },
    LockHelper {
        path: "crates/engine/src/cell.rs",
        name: "rwrite",
        why: "publish-cell RwLock write; a poisoned cell still holds the last published \
              Arc, so the next writer may replace it",
    },
    LockHelper {
        path: "crates/engine/src/engine.rs",
        name: "tlock",
        why: "telemetry Mutex; counters are plain integers, valid after any panic",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "olock",
        why: "recorder-internal Mutex; sink buffers stay structurally valid after a \
              panicking append",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "gread",
        why: "GLOBAL recorder RwLock read; a poisoned global still names a usable \
              recorder Arc",
    },
    LockHelper {
        path: "crates/obs/src/lib.rs",
        name: "gwrite",
        why: "GLOBAL recorder RwLock write; install/uninstall may proceed after a \
              poisoned reader",
    },
    LockHelper {
        path: "crates/obs/src/flight.rs",
        name: "fread",
        why: "FLIGHT recorder-slot RwLock read; the slot only ever holds a whole \
              Option<Arc<..>> replaced atomically, so a poisoned guard still names a \
              usable recorder",
    },
    LockHelper {
        path: "crates/obs/src/flight.rs",
        name: "fwrite",
        why: "FLIGHT recorder-slot RwLock write; install/uninstall may proceed after \
              a poisoned reader for the same reason as fread",
    },
    LockHelper {
        path: "crates/tinynn/src/sync.rs",
        name: "cread",
        why: "memo-cache RwLock read; caches hold pure recomputable values, poison \
              cannot corrupt them",
    },
    LockHelper {
        path: "crates/tinynn/src/sync.rs",
        name: "cwrite",
        why: "memo-cache RwLock write; worst case after poison is a redundant recompute",
    },
];

/// Heavy compute / IO entry points a lock guard must never be live
/// across (the `no-guard-across-compute` rule): holding a publish-cell
/// or telemetry guard across any of these stalls every reader behind
/// a long computation and widens the poison blast radius to the whole
/// serving plane. Snapshot first (`Arc::clone(&rread(..))`), drop the
/// guard, then compute.
pub const COMPUTE_CALLS: &[&str] = &[
    "search",
    "embed",
    "embed_batch",
    "embed_all",
    "embed_all_with_threads",
    "rebuilt",
    "rebuild_shard",
    "instantiate",
    "encode_view",
    "decode_parts",
    "snapshot_bytes",
    "from_spec",
];

/// A declared memory-ordering policy for one atomic.
#[derive(Debug, Clone, Copy)]
pub struct AtomicIntent {
    /// Repo-relative file the atomic's operations live in.
    pub path: &'static str,
    /// The atomic's identifier (field or static name) as it appears at
    /// the use sites.
    pub atomic: &'static str,
    /// Orderings permitted at those sites.
    pub allowed: &'static [&'static str],
    /// One-line rationale for the policy.
    pub why: &'static str,
}

/// The atomic-ordering intent table (the `atomic-ordering-registry`
/// rule's ground truth). Policy: `Relaxed` only for monotone
/// observability counters whose values carry no synchronization
/// meaning; anything that publishes state other threads then read
/// must use `Acquire`/`Release` pairs or `SeqCst`. Entries under
/// `crates/demo/` are lint fixture pins (that namespace never exists
/// in the repo) and are exempt from staleness checks.
pub const ATOMIC_INTENTS: &[AtomicIntent] = &[
    AtomicIntent {
        path: "crates/obs/src/lib.rs",
        atomic: "ACTIVE",
        allowed: &["Relaxed", "SeqCst"],
        why: "Relaxed for the enabled() fast-path load (stale reads only cost one \
              recorded/unrecorded event); SeqCst on install/uninstall so the count \
              totally orders with GLOBAL swaps",
    },
    AtomicIntent {
        path: "crates/obs/src/jsonl.rs",
        atomic: "SEQ",
        allowed: &["Relaxed"],
        why: "unique-suffix counter for export file names; uniqueness needs atomicity, \
              not ordering",
    },
    AtomicIntent {
        path: "crates/obs/src/memory.rs",
        atomic: "records",
        allowed: &["Relaxed"],
        why: "monotone record counter in the obs fast path; read only for reporting",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "attempts",
        allowed: &["Relaxed"],
        why: "fault-injection attempt counter; test-harness statistics only",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "injected",
        allowed: &["Relaxed"],
        why: "fault-injection hit counter; test-harness statistics only",
    },
    AtomicIntent {
        path: "crates/core/src/iofault.rs",
        atomic: "TMP_COUNTER",
        allowed: &["Relaxed"],
        why: "unique temp-file suffix; uniqueness needs atomicity, not ordering",
    },
    AtomicIntent {
        path: "crates/engine/src/trace.rs",
        atomic: "QUERY_IDS",
        allowed: &["Relaxed"],
        why: "unique trace query-id counter; uniqueness needs atomicity, not ordering",
    },
    AtomicIntent {
        path: "crates/engine/src/trace.rs",
        atomic: "INSTANCE_IDS",
        allowed: &["Relaxed"],
        why: "unique engine-instance id for trace grouping; uniqueness needs \
              atomicity, not ordering",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "captured",
        allowed: &["Relaxed"],
        why: "monotone flight-capture counter; read only for reporting",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "dropped",
        allowed: &["Relaxed"],
        why: "monotone overwrite counter; read only for reporting",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "seq",
        allowed: &["Relaxed"],
        why: "per-entry sequence stamp; the drain sorts by it, so allocation order \
              needs atomicity only",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "head",
        allowed: &["Relaxed"],
        why: "ring write cursor; slot claims need atomicity only — the entry payload \
              is published by the slot's AcqRel swap, not by this index",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "slots",
        allowed: &["AcqRel"],
        why: "ring-cell AtomicPtr swap: Release publishes the boxed entry to the \
              drainer, Acquire claims sole ownership of the displaced one",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "slot",
        allowed: &["AcqRel"],
        why: "drain/Drop loop over the ring cells; same publish/claim pairing as \
              `slots`",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "FLIGHT_ACTIVE",
        allowed: &["Relaxed", "SeqCst"],
        why: "Relaxed for the installed() fast-path load (a stale read only costs one \
              captured/uncaptured trace); SeqCst on install/uninstall so the count \
              totally orders with FLIGHT slot swaps",
    },
    AtomicIntent {
        path: "crates/obs/src/flight.rs",
        atomic: "DUMPING",
        allowed: &["SeqCst"],
        why: "poison_dump re-entrancy latch; runs on panic paths where a total order \
              is worth more than the saved fence",
    },
    AtomicIntent {
        path: "crates/obs/src/serve.rs",
        atomic: "healthy",
        allowed: &["Relaxed"],
        why: "OpsHealth flag read by /healthz; a stale read serves one slightly-old \
              health verdict, which scraping tolerates by design",
    },
    AtomicIntent {
        path: "crates/obs/src/serve.rs",
        atomic: "stop",
        allowed: &["SeqCst"],
        why: "ops-server shutdown latch; set once at shutdown, checked per accept — \
              not hot, so the strongest ordering documents intent for free",
    },
    AtomicIntent {
        path: "crates/demo/src/fail.rs",
        atomic: "DEMO_HITS",
        allowed: &["Relaxed"],
        why: "lint fixture pin: exercises the declared-but-wrong-ordering diagnostic",
    },
    AtomicIntent {
        path: "crates/demo/src/pass.rs",
        atomic: "DEMO_HITS",
        allowed: &["Relaxed"],
        why: "lint fixture pin: exercises the declared-and-conforming path",
    },
];

/// A sanctioned raw-print site: one library file allowed to write to
/// stdout/stderr directly (the `no-raw-print-in-lib` rule skips it).
#[derive(Debug, Clone, Copy)]
pub struct RawPrintAllowance {
    /// Repo-relative file the allowance covers.
    pub path: &'static str,
    /// One-line rationale: why this file cannot route through
    /// `traj_obs` like everyone else.
    pub why: &'static str,
}

/// The raw-print allowance registry. Keep it short: the only library
/// code that may print is code for which the obs pipeline itself is
/// the thing that might be broken.
pub const RAW_PRINT_ALLOWED: &[RawPrintAllowance] = &[RawPrintAllowance {
    path: "crates/obs/src/serve.rs",
    why: "the ops HTTP server's accept-loop error report; it cannot route through \
          traj_obs because the recorder may be exactly the component being debugged, \
          and a silent accept failure would look like a healthy-but-mute server",
}];

/// A `query*` entry point sanctioned without a visible `TraceCtx` /
/// `QueryTrace` in its span (the `trace-span-coverage` rule's ground
/// truth): either it delegates to a traced sibling, or it is not a
/// query entry point at all despite the name.
#[derive(Debug, Clone, Copy)]
pub struct TracedEntryPoint {
    /// Repo-relative file the function is defined in.
    pub path: &'static str,
    /// The function's name.
    pub func: &'static str,
    /// One-line rationale for the exemption.
    pub why: &'static str,
}

/// The traced-entry-point registry. Every public `query*` function in
/// `crates/engine` must create or accept a `TraceCtx` (or return the
/// sealed `QueryTrace`); the ones listed here are sanctioned because
/// they delegate into one that does.
pub const TRACED_ENTRY_POINTS: &[TracedEntryPoint] = &[
    TracedEntryPoint {
        path: "crates/engine/src/engine.rs",
        func: "query",
        why: "delegates to Traj2HashEngine::query_traced, which owns the TraceCtx",
    },
    TracedEntryPoint {
        path: "crates/engine/src/engine.rs",
        func: "query_with_info",
        why: "delegates to Traj2HashEngine::query_traced, which owns the TraceCtx",
    },
    TracedEntryPoint {
        path: "crates/engine/src/sharded.rs",
        func: "query",
        why: "both ShardedEngine::query and ShardReader::query delegate to their \
              query_traced siblings",
    },
    TracedEntryPoint {
        path: "crates/engine/src/sharded.rs",
        func: "query_with_info",
        why: "both query_with_info variants delegate to their query_traced siblings",
    },
    TracedEntryPoint {
        path: "crates/engine/src/trace.rs",
        func: "query_id",
        why: "accessor on TraceCtx itself, not a query entry point",
    },
];

/// The lint fixture namespace: registry entries under this prefix pin
/// fixture behaviour and are exempt from staleness warnings.
pub const FIXTURE_PATH_PREFIX: &str = "crates/demo/";

/// Duplicate entries would defeat the whole point of the registry; the
/// driver checks this on every run (and the test below pins it).
pub fn registry_duplicates() -> Vec<&'static str> {
    let mut seen = std::collections::HashSet::new();
    KNOWN_MAGICS.iter().filter(|m| !seen.insert(**m)).copied().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_no_duplicates() {
        assert!(registry_duplicates().is_empty());
    }

    #[test]
    fn registry_entries_look_like_magics() {
        for m in KNOWN_MAGICS {
            assert!((4..=8).contains(&m.len()), "{m}");
            assert!(m.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit()), "{m}");
        }
    }

    #[test]
    fn lock_helpers_are_unique_by_name_and_carry_rationale() {
        let mut seen = std::collections::HashSet::new();
        for h in LOCK_HELPERS {
            assert!(seen.insert(h.name), "helper name {} registered twice", h.name);
            assert!(!h.why.trim().is_empty(), "{}: empty rationale", h.name);
            assert!(h.path.starts_with("crates/"), "{}: odd path {}", h.name, h.path);
        }
    }

    #[test]
    fn atomic_intents_are_unique_per_site_and_use_real_orderings() {
        const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
        let mut seen = std::collections::HashSet::new();
        for i in ATOMIC_INTENTS {
            assert!(seen.insert((i.path, i.atomic)), "{}:{} declared twice", i.path, i.atomic);
            assert!(!i.allowed.is_empty(), "{}: empty allowed set", i.atomic);
            for o in i.allowed {
                assert!(ORDERINGS.contains(o), "{}: unknown ordering {o}", i.atomic);
            }
            assert!(!i.why.trim().is_empty(), "{}: empty rationale", i.atomic);
        }
    }

    #[test]
    fn raw_print_allowances_are_unique_and_carry_rationale() {
        let mut seen = std::collections::HashSet::new();
        for a in RAW_PRINT_ALLOWED {
            assert!(seen.insert(a.path), "{} allowed twice", a.path);
            assert!(!a.why.trim().is_empty(), "{}: empty rationale", a.path);
            assert!(a.path.starts_with("crates/"), "odd path {}", a.path);
        }
    }

    #[test]
    fn traced_entry_points_are_unique_and_engine_scoped() {
        let mut seen = std::collections::HashSet::new();
        for e in TRACED_ENTRY_POINTS {
            assert!(seen.insert((e.path, e.func)), "{}:{} declared twice", e.path, e.func);
            assert!(!e.why.trim().is_empty(), "{}: empty rationale", e.func);
            assert!(
                e.path.starts_with("crates/engine/src/")
                    || e.path.starts_with(FIXTURE_PATH_PREFIX),
                "{}: the rule only covers crates/engine",
                e.path
            );
            assert!(e.func.starts_with("query"), "{}: rule only matches query*", e.func);
        }
    }

    #[test]
    fn compute_calls_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in COMPUTE_CALLS {
            assert!(seen.insert(*c), "compute call {c} listed twice");
        }
    }
}
