//! Fixture tests: one failing and one passing fixture per lint rule.
//!
//! For each rule, `fixtures/<rule>/fail.rs` must produce diagnostics
//! that exactly match the committed snapshot `fail.expected` (trybuild
//! style — set `UPDATE_LINT_SNAPSHOTS=1` to regenerate after an
//! intentional message change), and `pass.rs` must produce none.
//!
//! A second group of tests runs the actual `traj-lint` binary against
//! throwaway trees, pinning the acceptance criterion: a violation
//! exits non-zero, a clean tree exits zero, and the allowlist and
//! `--fix-list` plumbing behave end to end.

use std::path::{Path, PathBuf};
use std::process::Command;
use traj_lint::rules::{self, Finding};
use traj_lint::source::scan;

/// Runs exactly one rule (by id) over a fixture file, with the
/// synthetic repo-relative path a real scan would use.
fn run_rule(rule: &str, fixture: &Path, which: &str) -> Vec<Finding> {
    let text = std::fs::read_to_string(fixture)
        .unwrap_or_else(|e| panic!("read {}: {e}", fixture.display()));
    // The engine rules are path-scoped; everything else gets a neutral
    // library-crate path.
    let path = if rule == "no-panic-in-engine" || rule == "trace-span-coverage" {
        format!("crates/engine/src/{which}.rs")
    } else {
        format!("crates/demo/src/{which}.rs")
    };
    let file = scan(&path, &text, false);
    let mut out = Vec::new();
    match rule {
        "no-float-partial-cmp-sort" => rules::no_float_partial_cmp_sort(&file, &mut out),
        "no-unwrap-in-lib" => rules::no_unwrap_in_lib(&file, &mut out),
        "no-silent-clamp" => rules::no_silent_clamp(&file, &mut out),
        "no-panic-in-engine" => rules::no_panic_in_engine(&file, &mut out),
        "no-raw-print-in-lib" => rules::no_raw_print_in_lib(&file, &mut out),
        "checkpoint-magic-registry" => rules::checkpoint_magic_registry(&file, &mut out),
        "no-bare-lock" => rules::no_bare_lock(&file, &mut out),
        "no-guard-across-compute" => rules::no_guard_across_compute(&file, &mut out),
        "no-lossy-as-cast" => rules::no_lossy_as_cast(&file, &mut out),
        "atomic-ordering-registry" => rules::atomic_ordering_registry(&file, &mut out),
        "trace-span-coverage" => rules::trace_span_coverage(&file, &mut out),
        other => panic!("unknown rule {other}"),
    }
    out
}

fn fixture_dir(rule: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(rule)
}

fn render(findings: &[Finding]) -> String {
    let mut s = findings.iter().map(|f| format!("{f}\n")).collect::<String>();
    if s.is_empty() {
        s.push('\n');
    }
    s
}

/// Snapshot-checks the failing fixture and asserts the passing fixture
/// is silent, for one rule.
fn check_rule_fixtures(rule: &str) {
    let dir = fixture_dir(rule);

    let fail = run_rule(rule, &dir.join("fail.rs"), "fail");
    assert!(!fail.is_empty(), "{rule}: fail.rs produced no findings");
    assert!(fail.iter().all(|f| f.rule == rule), "{rule}: wrong rule id in {fail:?}");
    let rendered = render(&fail);
    let snapshot = dir.join("fail.expected");
    if std::env::var_os("UPDATE_LINT_SNAPSHOTS").is_some() {
        std::fs::write(&snapshot, &rendered).expect("write snapshot");
    } else {
        let expected = std::fs::read_to_string(&snapshot)
            .unwrap_or_else(|e| panic!("{rule}: missing snapshot {}: {e}", snapshot.display()));
        assert_eq!(
            rendered, expected,
            "{rule}: diagnostics drifted from fail.expected \
             (rerun with UPDATE_LINT_SNAPSHOTS=1 if intentional)"
        );
    }

    let pass = run_rule(rule, &dir.join("pass.rs"), "pass");
    assert!(pass.is_empty(), "{rule}: pass.rs was flagged: {pass:?}");
}

#[test]
fn fixture_no_float_partial_cmp_sort() {
    check_rule_fixtures("no-float-partial-cmp-sort");
}

#[test]
fn fixture_no_unwrap_in_lib() {
    check_rule_fixtures("no-unwrap-in-lib");
}

#[test]
fn fixture_no_silent_clamp() {
    check_rule_fixtures("no-silent-clamp");
}

#[test]
fn fixture_no_panic_in_engine() {
    check_rule_fixtures("no-panic-in-engine");
}

#[test]
fn fixture_no_raw_print_in_lib() {
    check_rule_fixtures("no-raw-print-in-lib");
}

#[test]
fn fixture_checkpoint_magic_registry() {
    check_rule_fixtures("checkpoint-magic-registry");
}

#[test]
fn fixture_no_bare_lock() {
    check_rule_fixtures("no-bare-lock");
}

#[test]
fn fixture_no_guard_across_compute() {
    check_rule_fixtures("no-guard-across-compute");
}

#[test]
fn fixture_no_lossy_as_cast() {
    check_rule_fixtures("no-lossy-as-cast");
}

#[test]
fn fixture_atomic_ordering_registry() {
    check_rule_fixtures("atomic-ordering-registry");
}

#[test]
fn fixture_trace_span_coverage() {
    check_rule_fixtures("trace-span-coverage");
}

#[test]
fn every_rule_has_fixture_coverage() {
    for rule in rules::RULES {
        let dir = fixture_dir(rule);
        for name in ["fail.rs", "pass.rs", "fail.expected"] {
            assert!(dir.join(name).is_file(), "missing fixtures/{rule}/{name}");
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end: the built binary against throwaway repo trees.
// ---------------------------------------------------------------------

/// A scratch repo tree under the target dir; removed on drop.
struct TempTree {
    root: PathBuf,
}

impl TempTree {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-e2e-{tag}"));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("crates/demo/src")).expect("mkdir");
        Self { root }
    }

    fn write(&self, rel: &str, text: &str) {
        let path = self.root.join(rel);
        std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        std::fs::write(path, text).expect("write");
    }
}

impl Drop for TempTree {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn lint_cmd(root: &Path) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_traj-lint"));
    cmd.arg("--root").arg(root);
    cmd
}

#[test]
fn binary_exits_nonzero_on_violation_and_zero_when_clean() {
    let tree = TempTree::new("exit-codes");
    tree.write(
        "crates/demo/src/lib.rs",
        "pub fn rank(xs: &mut [f32]) {\n    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n}\n",
    );

    let dirty = lint_cmd(&tree.root).output().expect("run traj-lint");
    assert_eq!(dirty.status.code(), Some(1), "violation must exit 1");
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("no-float-partial-cmp-sort"), "stdout: {stdout}");
    assert!(stdout.contains("crates/demo/src/lib.rs:2"), "stdout: {stdout}");

    tree.write(
        "crates/demo/src/lib.rs",
        "pub fn rank(xs: &mut [f32]) {\n    xs.sort_by(f32::total_cmp);\n}\n",
    );
    let clean = lint_cmd(&tree.root).output().expect("run traj-lint");
    assert_eq!(clean.status.code(), Some(0), "clean tree must exit 0");
    assert!(String::from_utf8_lossy(&clean.stdout).contains("traj-lint: clean"));
}

#[test]
fn binary_fix_list_entries_round_trip_through_the_allowlist() {
    let tree = TempTree::new("fix-list");
    tree.write(
        "crates/demo/src/lib.rs",
        "pub fn head(xs: &[u32]) -> u32 {\n    *xs.first().unwrap()\n}\n",
    );

    let out = lint_cmd(&tree.root).arg("--fix-list").output().expect("run traj-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let entries: Vec<&str> = stdout
        .lines()
        .filter(|l| l.starts_with("no-unwrap-in-lib\t"))
        .collect();
    assert_eq!(entries.len(), 1, "stdout: {stdout}");

    tree.write("lint.allow", &format!("{}\n", entries[0]));
    let suppressed = lint_cmd(&tree.root).output().expect("run traj-lint");
    assert_eq!(suppressed.status.code(), Some(0), "allowlisted finding must pass");
    assert!(String::from_utf8_lossy(&suppressed.stdout).contains("1 suppressed"));
}

#[test]
fn binary_rejects_an_overfull_allowlist() {
    let tree = TempTree::new("over-cap");
    tree.write("crates/demo/src/lib.rs", "pub fn ok() {}\n");
    let entries: String = (0..21)
        .map(|i| format!("no-unwrap-in-lib\tcrates/demo/src/lib.rs\tline{i:02}.unwrap()\n"))
        .collect();
    tree.write("lint.allow", &entries);

    let out = lint_cmd(&tree.root).output().expect("run traj-lint");
    assert_eq!(out.status.code(), Some(2), "over-cap allowlist is a driver error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("21"), "stderr: {stderr}");
}
