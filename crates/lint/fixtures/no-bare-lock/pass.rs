//! Passing fixture: sanctioned helper calls, a justified annotation,
//! and an IO read that must not be mistaken for a lock.
use std::sync::{Arc, Mutex, RwLock};

pub fn telemetry_bump(m: &Mutex<u64>) {
    *tlock(m) += 1;
}

pub fn pinned(l: &RwLock<Arc<State>>) -> Arc<State> {
    Arc::clone(&rread(l))
}

pub fn init_once(m: &Mutex<u64>) {
    // lint: allow(bare-lock) — single-threaded startup; nothing can have poisoned it
    let mut g = m.lock().expect("init lock");
    *g = 0;
}

pub fn stream(r: &mut impl std::io::Read, buf: &mut [u8]) -> std::io::Result<usize> {
    r.read(buf)
}
