//! Failing fixture: direct lock acquisitions outside the sanctioned
//! poison-proof helpers — each site decides poison policy ad hoc.
use std::sync::{Mutex, RwLock};

pub fn telemetry_bump(m: &Mutex<u64>) {
    let mut g = m.lock().expect("telemetry poisoned");
    *g += 1;
}

pub fn snapshot(l: &RwLock<Vec<u32>>) -> Vec<u32> {
    l.read().expect("state poisoned").clone()
}

pub fn replace(l: &RwLock<Vec<u32>>, next: Vec<u32>) {
    *l.write().expect("state poisoned") = next;
}
