//! Passing fixture: the declared intent for `DEMO_HITS` allows
//! Relaxed, and a justified one-off annotation covers the rest.
use std::sync::atomic::{AtomicU64, Ordering};

static DEMO_HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    DEMO_HITS.fetch_add(1, Ordering::Relaxed)
}

pub fn publish_ready(flag: &std::sync::atomic::AtomicU8) {
    // lint: allow(atomic-ordering) — one-shot init flag; Release pairs with the Acquire in wait_ready
    flag.store(1, Ordering::Release);
}
