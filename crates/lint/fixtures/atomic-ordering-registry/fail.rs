//! Failing fixture: an ordering stronger than the declared intent for
//! `DEMO_HITS` (registry pins it to Relaxed), and an atomic with no
//! declared intent at all.
use std::sync::atomic::{AtomicU64, Ordering};

static DEMO_HITS: AtomicU64 = AtomicU64::new(0);
static UNDECLARED: AtomicU64 = AtomicU64::new(0);

pub fn bump() -> u64 {
    DEMO_HITS.fetch_add(1, Ordering::SeqCst)
}

pub fn peek() -> u64 {
    UNDECLARED.load(Ordering::Relaxed)
}
