//! Failing fixture: narrowing `as` casts in library code — a corrupt
//! length field wraps silently instead of erroring.

pub fn decode_len(raw: u64) -> usize {
    raw as usize
}

pub fn pack_index(idx: usize) -> u32 {
    idx as u32
}
