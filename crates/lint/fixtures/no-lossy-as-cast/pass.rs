//! Passing fixture: checked conversion with a typed error, genuinely
//! widening casts, and a justified in-range annotation.

pub fn decode_len(raw: u64) -> Result<usize, DecodeError> {
    usize::try_from(raw).map_err(|_| DecodeError::LengthOverflow(raw))
}

pub fn widen(n: u32) -> u64 {
    n as u64
}

pub fn to_float(n: u32) -> f64 {
    n as f64
}

pub fn bucket(bits: u64) -> usize {
    // lint: allow(lossy-cast) — masked to 6 bits on the previous line
    (bits & 0x3f) as usize
}
