// Fixture: NaN-sound float ordering — total_cmp everywhere, plus the
// patterns the rule must NOT trip on: strings, comments, and test code.
pub fn rank(xs: &mut [f32]) {
    xs.sort_by(f32::total_cmp);
}

pub fn describe() -> &'static str {
    // mentioning partial_cmp in a comment is fine
    "prefer total_cmp over a.partial_cmp(b) for floats"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let mut v = vec![2.0f32, 1.0];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![1.0, 2.0]);
    }
}
