// Fixture: NaN-unsound float ordering — the exact pattern behind the
// seven sorts fixed in this PR. Must be flagged.
pub fn rank(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn nearest(dists: &[(usize, f64)]) -> Option<usize> {
    dists
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .map(|(i, _)| *i)
}
