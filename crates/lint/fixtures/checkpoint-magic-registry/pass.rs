// Fixture: registered magics, annotated magic-shaped constants, and
// byte strings that don't look like magics at all.
pub const MAGIC: &[u8; 8] = b"T2HCKPT1";

// lint: allow(magic) — a wire sample used in docs, not a container header
pub const SAMPLE: &[u8; 4] = b"AB12";

pub const NOT_A_MAGIC_TOO_SHORT: &[u8; 2] = b"AB";
pub const NOT_A_MAGIC_LOWERCASE: &[u8; 4] = b"abcd";
