// Fixture: a magic-shaped container header not declared in the registry
// (crates/lint/src/registry.rs). Must be flagged.
pub const MAGIC: &[u8; 8] = b"ZZTRAJ99";
