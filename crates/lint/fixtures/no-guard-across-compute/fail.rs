//! Failing fixture: lock guards live across compute entry points —
//! every queued reader and the writer stall for the whole computation.

pub fn reader(&self) -> Reader {
    let bp = rread(&self.model);
    let replica = bp.instantiate();
    Reader { replica }
}

pub fn stalled_query(&self, q: &Traj) -> Vec<Hit> {
    rread(&self.state).search(q)
}
