//! Passing fixture: the sanctioned shapes — clone the Arc out and let
//! the guard die at the statement, or drop it before computing.

pub fn reader(&self) -> Reader {
    let bp = Arc::clone(&rread(&self.model));
    let replica = bp.instantiate();
    Reader { replica }
}

pub fn bump_then_rebuild(&self) -> ShardState {
    let mut g = rwrite(&self.cell);
    g.mark_dirty();
    drop(g);
    rebuild_shard(&self.cfg)
}
