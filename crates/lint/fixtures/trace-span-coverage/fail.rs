// Fixture: public query entry points on the serving crate that neither
// create/accept a TraceCtx nor appear in TRACED_ENTRY_POINTS. Both must
// be flagged.
pub fn query(&self, k: usize) -> Vec<Hit> {
    self.scan(k)
}

pub fn query_nearest(&self, k: usize) -> Vec<Hit> {
    self.scan(k).into_iter().take(1).collect()
}
