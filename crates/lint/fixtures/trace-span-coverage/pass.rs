// Fixture: every public query entry point is trace-covered — it owns a
// TraceCtx, returns the sealed QueryTrace, is internal plumbing, or
// carries a justified annotation.
pub fn query_traced(&self, k: usize) -> (Vec<Hit>, QueryTrace) {
    let mut trace = TraceCtx::new();
    trace.step("embed");
    let hits = self.scan(k, &mut trace);
    (hits, trace.finish())
}

// Internal plumbing accepts the ctx; `pub(crate)` is not an entry point.
pub(crate) fn query_inner(&self, k: usize, trace: &mut TraceCtx) -> Vec<Hit> {
    self.scan(k, trace)
}

// Non-query public API is out of the rule's scope.
pub fn rebuild(&mut self) {
    self.refresh()
}

// lint: allow(trace-span) — bench-only probe, never serves traffic
pub fn query_count(&self) -> usize {
    self.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn untraced_query_helpers_are_fine_in_tests() {
        pub fn query_fixture() -> usize {
            3
        }
        assert_eq!(query_fixture(), 3);
    }
}
