// Fixture: the serving crate returns typed errors instead of panicking.
pub enum EngineError {
    OutOfRange(usize),
    Empty,
}

pub fn lookup(codes: &[u64], id: usize) -> Result<u64, EngineError> {
    codes.get(id).copied().ok_or(EngineError::OutOfRange(id))
}

pub fn first(codes: &[u64]) -> Result<u64, EngineError> {
    codes.first().copied().ok_or(EngineError::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panics_allowed_in_tests() {
        let r = lookup(&[1, 2], 5);
        assert!(matches!(r, Err(EngineError::OutOfRange(5))));
    }
}
