// Fixture: panics on the serving crate's query path. Both the explicit
// panic! and the .expect( must be flagged.
pub fn lookup(codes: &[u64], id: usize) -> u64 {
    if id >= codes.len() {
        panic!("id {id} out of range");
    }
    codes[id]
}

pub fn first(codes: &[u64]) -> u64 {
    *codes.first().expect("engine has at least one code")
}
