// Fixture: a failed float comparison silently clamped to Equal — the
// ordering scrambles instead of erroring. Must be flagged.
use std::cmp::Ordering;

pub fn rank(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}
