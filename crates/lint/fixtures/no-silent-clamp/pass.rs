// Fixture: NaN-sound ordering, and an unwrap_or that has nothing to do
// with Ordering (must not be flagged).
pub fn rank(xs: &mut [f32]) {
    xs.sort_by(f32::total_cmp);
}

pub fn count_or_zero(n: Option<usize>) -> usize {
    n.unwrap_or(0)
}
