// Fixture: the three sanctioned shapes — no unwrap at all, a justified
// `lint: allow` annotation, and test code.
pub fn head(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

pub fn head_nonempty(xs: &[u32]) -> u32 {
    // lint: allow(unwrap) — caller guarantees xs is non-empty
    *xs.first().unwrap()
}

pub fn head_same_line(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // lint: allow(unwrap) — len asserted by caller
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = vec![7u32];
        assert_eq!(head(&v).unwrap(), 7);
    }
}
