// Fixture: bare unwrap in library code with no justification. Must be
// flagged — library crates return typed errors.
pub fn head(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
