pub fn report_load(rows: usize, corrupt: usize) {
    traj_obs::event("data.load", &[("rows", rows.into()), ("corrupt", corrupt.into())]);
}

pub fn usage_text() -> String {
    "usage: tool [--flag]".to_string()
}

pub fn usage(msg: &str) -> ! {
    // lint: allow(raw-print) — CLI usage text goes to stderr by design
    eprintln!("{msg}");
    std::process::exit(2)
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("debug output in tests is exempt");
    }
}
