pub fn report_load(rows: usize, corrupt: usize) {
    println!("loaded {rows} rows ({corrupt} corrupt)");
}

pub fn warn_divergence(count: usize) {
    eprintln!("divergence guard fired {count} time(s)");
}
