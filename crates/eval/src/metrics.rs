//! Top-k search quality metrics (Section V-A4): HR@k and R10@50.

/// Hitting ratio HR@k: overlap between the predicted top-k and the
/// ground-truth top-k, divided by k.
pub fn hr_at_k(predicted: &[usize], truth: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let p = &predicted[..k.min(predicted.len())];
    let t = &truth[..k.min(truth.len())];
    if t.is_empty() {
        return 0.0;
    }
    let hits = p.iter().filter(|x| t.contains(x)).count();
    hits as f64 / t.len() as f64
}

/// R10@50: fraction of the ground-truth top-10 covered by the predicted
/// top-50.
pub fn r10_at_50(predicted: &[usize], truth: &[usize]) -> f64 {
    recall_k1_at_k2(predicted, truth, 10, 50)
}

/// General top-`k2` recall of the ground-truth top-`k1`.
pub fn recall_k1_at_k2(predicted: &[usize], truth: &[usize], k1: usize, k2: usize) -> f64 {
    let t = &truth[..k1.min(truth.len())];
    if t.is_empty() {
        return 0.0;
    }
    let p = &predicted[..k2.min(predicted.len())];
    let hits = t.iter().filter(|x| p.contains(x)).count();
    hits as f64 / t.len() as f64
}

/// The metric triple the paper reports for every method.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// HR@10.
    pub hr10: f64,
    /// HR@50.
    pub hr50: f64,
    /// R10@50.
    pub r10_50: f64,
}

impl Metrics {
    /// Averages the per-query metrics over a whole query set. Each entry
    /// of `predicted` must be a ranking of at least 50 database indices
    /// (shorter rankings are handled but cap the achievable metrics);
    /// each entry of `truth` the exact top-50 (or at least top-10).
    pub fn evaluate(predicted: &[Vec<usize>], truth: &[Vec<usize>]) -> Metrics {
        assert_eq!(predicted.len(), truth.len(), "query count mismatch");
        if predicted.is_empty() {
            return Metrics::default();
        }
        let n = predicted.len() as f64;
        let mut m = Metrics::default();
        for (p, t) in predicted.iter().zip(truth) {
            m.hr10 += hr_at_k(p, t, 10);
            m.hr50 += hr_at_k(p, t, 50);
            m.r10_50 += r10_at_50(p, t);
        }
        m.hr10 /= n;
        m.hr50 /= n;
        m.r10_50 /= n;
        m
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HR@10={:.4} HR@50={:.4} R10@50={:.4}",
            self.hr10, self.hr50, self.r10_50
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_one() {
        let truth: Vec<usize> = (0..50).collect();
        let m = Metrics::evaluate(std::slice::from_ref(&truth), std::slice::from_ref(&truth));
        assert_eq!(m.hr10, 1.0);
        assert_eq!(m.hr50, 1.0);
        assert_eq!(m.r10_50, 1.0);
    }

    #[test]
    fn disjoint_prediction_scores_zero() {
        let truth: Vec<usize> = (0..50).collect();
        let predicted: Vec<usize> = (100..150).collect();
        let m = Metrics::evaluate(&[predicted], &[truth]);
        assert_eq!(m.hr10, 0.0);
        assert_eq!(m.hr50, 0.0);
        assert_eq!(m.r10_50, 0.0);
    }

    #[test]
    fn hr_at_k_partial_overlap() {
        // predicted top-10 shares 4 items with truth top-10
        let predicted = vec![0, 1, 2, 3, 90, 91, 92, 93, 94, 95];
        let truth: Vec<usize> = (0..10).collect();
        assert!((hr_at_k(&predicted, &truth, 10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn r10_at_50_counts_truth_coverage() {
        // The truth top-10 all appear late in the predicted top-50.
        let mut predicted: Vec<usize> = (100..140).collect();
        predicted.extend(0..10);
        let truth: Vec<usize> = (0..10).collect();
        assert_eq!(r10_at_50(&predicted, &truth), 1.0);
        // If only half the truth is inside the top-50:
        let mut predicted2: Vec<usize> = (100..145).collect();
        predicted2.extend(0..5);
        assert_eq!(r10_at_50(&predicted2, &truth), 0.5);
    }

    #[test]
    fn ordering_within_top_k_does_not_matter() {
        let truth: Vec<usize> = (0..10).collect();
        let forward: Vec<usize> = (0..10).collect();
        let backward: Vec<usize> = (0..10).rev().collect();
        assert_eq!(hr_at_k(&forward, &truth, 10), hr_at_k(&backward, &truth, 10));
    }

    #[test]
    fn averaging_over_queries() {
        let truth: Vec<usize> = (0..50).collect();
        let wrong: Vec<usize> = (100..150).collect();
        let m = Metrics::evaluate(&[truth.clone(), wrong], &[truth.clone(), truth]);
        assert!((m.hr10 - 0.5).abs() < 1e-12);
    }
}
