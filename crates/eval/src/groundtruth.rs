//! Exact ground-truth top-k computation for the test protocol
//! (Section V-A2): each query's true nearest neighbours in the database
//! under the chosen measure, computed in parallel.

use traj_data::Trajectory;
use traj_dist::Measure;
use traj_index::{top_k_hits, Hit};

/// Computes, for every query, the indices of its `k` nearest database
/// trajectories under `measure`. Parallelized over queries.
pub fn ground_truth_top_k(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    k: usize,
) -> Vec<Vec<usize>> {
    let threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1);
    let threads = threads.min(queries.len().max(1));
    if threads <= 1 {
        return queries.iter().map(|q| top_k_one(q, database, measure, k)).collect();
    }
    let mut results: Vec<Option<Vec<usize>>> = vec![None; queries.len()];
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < queries.len() {
                        out.push((i, top_k_one(&queries[i], database, measure, k)));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("ground truth worker panicked") {
                results[i] = Some(r);
            }
        }
    });
    results.into_iter().map(|r| r.expect("row computed")).collect()
}

/// Delegates to the shared NaN-sound selection helper
/// [`traj_index::top_k_hits`]: `total_cmp` ordering (a NaN distance can
/// never be ranked "nearest") with deterministic ascending-index ties.
fn top_k_one(query: &Trajectory, database: &[Trajectory], measure: Measure, k: usize) -> Vec<usize> {
    let scored: Vec<Hit> = database
        .iter()
        .enumerate()
        .map(|(i, t)| Hit { index: i, distance: measure.distance(query, t) })
        .collect();
    top_k_hits(scored, k).into_iter().map(|h| h.index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    #[test]
    fn parallel_matches_serial() {
        let trajs = CityGenerator::new(CityParams::test_city(), 3).generate(40);
        let (queries, database) = trajs.split_at(10);
        let par = ground_truth_top_k(queries, database, Measure::Dtw, 5);
        let ser: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| top_k_one(q, database, Measure::Dtw, 5))
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let trajs = CityGenerator::new(CityParams::test_city(), 4).generate(30);
        let (queries, database) = trajs.split_at(5);
        let truth = ground_truth_top_k(queries, database, Measure::Frechet, 10);
        for (q, t) in queries.iter().zip(&truth) {
            assert_eq!(t.len(), 10);
            let dists: Vec<f64> =
                t.iter().map(|&j| Measure::Frechet.distance(q, &database[j])).collect();
            for w in dists.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }
}
