//! Exact ground-truth top-k computation for the test protocol
//! (Section V-A2): each query's true nearest neighbours in the database
//! under the chosen measure.
//!
//! The default path is the bucket-pruned sparse driver
//! ([`traj_dist::pruned_top_k`]): coarse-grid candidate seeding plus
//! lower-bound pruning skips the vast majority of exact distance
//! computations while returning bit-for-bit the dense result (see
//! `traj_dist::sparse` for the exactness argument). The dense
//! all-pairs scan is kept behind [`GroundTruthOptions::dense_oracle`] as
//! the parity oracle the pruned path is tested against, and for
//! measures/workloads where pruning cannot win.

use crate::error::EvalError;
use traj_data::Trajectory;
use traj_dist::{pruned_top_k, Measure, PruneStats, PrunedTopK};
use traj_index::{top_k_hits, Hit};

/// How ground truth is computed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruthOptions {
    /// Coarse-grid cell size (meters) for the pruned driver's buckets.
    pub cell_m: f64,
    /// Compute via the dense all-pairs scan instead of the pruned
    /// driver — the parity oracle.
    pub dense_oracle: bool,
    /// Worker thread cap; `None` uses the available parallelism.
    pub threads: Option<usize>,
}

impl Default for GroundTruthOptions {
    fn default() -> Self {
        GroundTruthOptions { cell_m: 500.0, dense_oracle: false, threads: None }
    }
}

/// Computes, for every query, the indices of its `k` nearest database
/// trajectories under `measure`, via the bucket-pruned exact driver.
/// Parallelized over queries; worker failures surface as [`EvalError`].
pub fn ground_truth_top_k(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    k: usize,
) -> Result<Vec<Vec<usize>>, EvalError> {
    ground_truth_top_k_with(queries, database, measure, k, &GroundTruthOptions::default())
        .map(|(rows, _)| rows)
}

/// [`ground_truth_top_k`] with explicit options, also returning the
/// pruning counters (all-exact counters on the dense oracle path).
pub fn ground_truth_top_k_with(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    k: usize,
    opts: &GroundTruthOptions,
) -> Result<(Vec<Vec<usize>>, PruneStats), EvalError> {
    if opts.dense_oracle {
        let rows = dense_ground_truth_top_k(queries, database, measure, k, opts.threads)?;
        let pairs = (queries.len() * database.len()) as u64;
        let stats = PruneStats {
            pairs_total: pairs,
            pairs_exact: pairs,
            ..PruneStats::default()
        };
        return Ok((rows, stats));
    }
    let cfg = PrunedTopK {
        k,
        cell_m: opts.cell_m,
        keep_distances: false,
        threads: opts.threads,
    };
    let result = pruned_top_k(queries, database, measure, &cfg)?;
    Ok((result.top_k, result.stats))
}

/// The dense all-pairs oracle: every query scanned against every
/// database trajectory, parallelized over queries with typed errors on
/// worker failure.
pub fn dense_ground_truth_top_k(
    queries: &[Trajectory],
    database: &[Trajectory],
    measure: Measure,
    k: usize,
    threads: Option<usize>,
) -> Result<Vec<Vec<usize>>, EvalError> {
    let nq = queries.len();
    let threads = threads
        .unwrap_or_else(|| std::thread::available_parallelism().map(|t| t.get()).unwrap_or(1))
        .clamp(1, nq.max(1));
    if threads <= 1 {
        return Ok(queries.iter().map(|q| top_k_one(q, database, measure, k)).collect());
    }
    let mut results: Vec<Option<Vec<usize>>> = vec![None; nq];
    let joined: Result<(), EvalError> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    let mut i = t;
                    while i < nq {
                        out.push((i, top_k_one(&queries[i], database, measure, k)));
                        i += threads;
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let worker = h.join().map_err(|_| EvalError::WorkerPanicked)?;
            for (i, r) in worker {
                results[i] = Some(r);
            }
        }
        Ok(())
    });
    joined?;
    let mut rows = Vec::with_capacity(nq);
    for r in results {
        match r {
            Some(row) => rows.push(row),
            None => return Err(EvalError::WorkerPanicked),
        }
    }
    Ok(rows)
}

/// Delegates to the shared NaN-sound selection helper
/// [`traj_index::top_k_hits`]: `total_cmp` ordering (a NaN distance can
/// never be ranked "nearest") with deterministic ascending-index ties.
fn top_k_one(query: &Trajectory, database: &[Trajectory], measure: Measure, k: usize) -> Vec<usize> {
    let scored: Vec<Hit> = database
        .iter()
        .enumerate()
        .map(|(i, t)| Hit { index: i, distance: measure.distance(query, t) })
        .collect();
    top_k_hits(scored, k).into_iter().map(|h| h.index).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    #[test]
    fn pruned_matches_dense_oracle() {
        let trajs = CityGenerator::new(CityParams::test_city(), 3).generate(60);
        let (queries, database) = trajs.split_at(10);
        for measure in Measure::paper_suite() {
            let pruned = ground_truth_top_k(queries, database, measure, 5).unwrap();
            let dense =
                dense_ground_truth_top_k(queries, database, measure, 5, None).unwrap();
            assert_eq!(pruned, dense, "parity failed for {measure}");
        }
    }

    #[test]
    fn dense_oracle_flag_routes_to_dense_path() {
        let trajs = CityGenerator::new(CityParams::test_city(), 5).generate(40);
        let (queries, database) = trajs.split_at(8);
        let opts = GroundTruthOptions { dense_oracle: true, ..GroundTruthOptions::default() };
        let (rows, stats) =
            ground_truth_top_k_with(queries, database, Measure::Dtw, 5, &opts).unwrap();
        assert_eq!(rows, dense_ground_truth_top_k(queries, database, Measure::Dtw, 5, None).unwrap());
        assert_eq!(stats.pairs_total, stats.pairs_exact);
        assert_eq!(stats.pairs_total, (queries.len() * database.len()) as u64);
        assert_eq!(stats.pairs_pruned_bucket + stats.pairs_pruned_lb, 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let trajs = CityGenerator::new(CityParams::test_city(), 3).generate(40);
        let (queries, database) = trajs.split_at(10);
        let par = ground_truth_top_k(queries, database, Measure::Dtw, 5).unwrap();
        let ser: Vec<Vec<usize>> = queries
            .iter()
            .map(|q| top_k_one(q, database, Measure::Dtw, 5))
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let trajs = CityGenerator::new(CityParams::test_city(), 4).generate(30);
        let (queries, database) = trajs.split_at(5);
        let truth = ground_truth_top_k(queries, database, Measure::Frechet, 10).unwrap();
        for (q, t) in queries.iter().zip(&truth) {
            assert_eq!(t.len(), 10);
            let dists: Vec<f64> =
                t.iter().map(|&j| Measure::Frechet.distance(q, &database[j])).collect();
            for w in dists.windows(2) {
                assert!(w[0] <= w[1] + 1e-12);
            }
        }
    }

    #[test]
    fn bad_cell_size_is_a_typed_error() {
        let trajs = CityGenerator::new(CityParams::test_city(), 6).generate(10);
        let opts = GroundTruthOptions { cell_m: 0.0, ..GroundTruthOptions::default() };
        assert_eq!(
            ground_truth_top_k_with(&trajs[..2], &trajs[2..], Measure::Dtw, 3, &opts),
            Err(EvalError::InvalidCellSize)
        );
    }
}
