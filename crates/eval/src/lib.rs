//! # traj-eval — metrics and experiment utilities
//!
//! HR@k and R10@50 metrics (Section V-A4), exact parallel ground-truth
//! top-k computation, ranking glue over embeddings/hash codes, and plain
//! text table rendering for the experiment harnesses.

#![warn(missing_docs)]

pub mod error;
pub mod groundtruth;
pub mod metrics;
pub mod rank;
pub mod table;

pub use error::EvalError;
pub use groundtruth::{
    dense_ground_truth_top_k, ground_truth_top_k, ground_truth_top_k_with, GroundTruthOptions,
};
pub use metrics::{hr_at_k, r10_at_50, recall_k1_at_k2, Metrics};
pub use rank::{pack_codes, pack_codes_from_floats, rank_euclidean, rank_hamming};
pub use table::{fmt4, fmt_ms, TextTable};
