//! Typed evaluation failures.
//!
//! Library code in `traj-eval` never panics on operational failures: a
//! worker thread dying mid-sweep or a bad configuration surfaces as an
//! [`EvalError`] the caller can handle (the `no-panic-in-engine` lint
//! rule covers this crate to keep it that way).

use std::fmt;
use traj_dist::PruneError;

/// Failures of ground-truth computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvalError {
    /// The configured coarse cell size is not a positive finite number.
    InvalidCellSize,
    /// A parallel worker panicked (a bug in a distance kernel, e.g. an
    /// empty trajectory reaching Hausdorff); the panic is contained and
    /// reported instead of propagated.
    WorkerPanicked,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::InvalidCellSize => {
                write!(f, "ground truth coarse cell size must be a positive finite number")
            }
            EvalError::WorkerPanicked => write!(f, "ground truth worker panicked"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<PruneError> for EvalError {
    fn from(e: PruneError) -> Self {
        match e {
            PruneError::InvalidCellSize => EvalError::InvalidCellSize,
            PruneError::WorkerPanicked => EvalError::WorkerPanicked,
        }
    }
}
