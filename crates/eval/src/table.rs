//! Plain-text table rendering for experiment harness output.

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn add_row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push(' ');
                line.push_str(cell);
                line.push_str(&" ".repeat(w - cell.len() + 1));
                line.push('|');
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&"-".repeat(w + 2));
            sep.push('|');
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders the table as CSV (no quoting; intended for simple numeric
    /// experiment dumps).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float metric to 4 decimals, the paper's table precision.
pub fn fmt4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats milliseconds with 3 decimals.
pub fn fmt_ms(seconds: f64) -> String {
    format!("{:.3}", seconds * 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["Method", "HR@10"]);
        t.add_row(vec!["Traj2Hash", "0.5652"]);
        t.add_row(vec!["x", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all lines equal width
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("Method"));
        assert!(lines[2].contains("Traj2Hash"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn csv_roundtrip_structure() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt4(0.56521), "0.5652");
        assert_eq!(fmt_ms(0.001234), "1.234");
    }
}
