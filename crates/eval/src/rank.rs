//! Glue between embeddings/codes and metric evaluation: produce the
//! predicted rankings a method induces over a database.

use traj_index::{euclidean_top_k, hamming_top_k, BinaryCode};

/// Predicted top-`depth` rankings in Euclidean space for every query
/// embedding.
pub fn rank_euclidean(
    database: &[Vec<f32>],
    queries: &[Vec<f32>],
    depth: usize,
) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| euclidean_top_k(database, q, depth).into_iter().map(|h| h.index).collect())
        .collect()
}

/// Predicted top-`depth` rankings in Hamming space for every query code.
pub fn rank_hamming(
    database: &[BinaryCode],
    queries: &[BinaryCode],
    depth: usize,
) -> Vec<Vec<usize>> {
    queries
        .iter()
        .map(|q| hamming_top_k(database, q, depth).into_iter().map(|h| h.index).collect())
        .collect()
}

/// Packs sign vectors (`+-1`) into binary codes.
pub fn pack_codes(signs: &[Vec<i8>]) -> Vec<BinaryCode> {
    signs.iter().map(|s| BinaryCode::from_signs(s)).collect()
}

/// Packs float embeddings into binary codes by sign.
pub fn pack_codes_from_floats(embeddings: &[Vec<f32>]) -> Vec<BinaryCode> {
    embeddings.iter().map(|e| BinaryCode::from_floats(e)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_ranking_orders_database() {
        let db = vec![vec![5.0], vec![1.0], vec![3.0]];
        let ranked = rank_euclidean(&db, &[vec![0.0]], 3);
        assert_eq!(ranked, vec![vec![1, 2, 0]]);
    }

    #[test]
    fn hamming_ranking_orders_database() {
        let db = pack_codes(&[
            vec![1, 1, 1, 1],
            vec![-1, -1, -1, -1],
            vec![1, 1, -1, -1],
        ]);
        let q = BinaryCode::from_signs(&[1, 1, 1, -1]);
        let ranked = rank_hamming(&db, &[q], 3);
        // distances: 1, 3, 1 -> order (0, 2 tie by index), then 1
        assert_eq!(ranked, vec![vec![0, 2, 1]]);
    }

    #[test]
    fn pack_variants_agree() {
        let floats = vec![vec![0.5f32, -0.2, 0.1, -0.9]];
        let signs = vec![vec![1i8, -1, 1, -1]];
        assert_eq!(pack_codes(&signs), pack_codes_from_floats(&floats));
    }
}
