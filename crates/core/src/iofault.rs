//! Durable atomic file writes with a deterministic fault-injection
//! seam.
//!
//! Every artifact this workspace persists — trainer checkpoints
//! (`T2HCKPT1`) and engine snapshots (`T2HSNAP1`) — goes through
//! [`durable_write`]. The function implements the full crash-safe
//! discipline the ad-hoc `fs::write` + `rename` pair silently skipped:
//!
//! 1. encode to a **unique tmp sibling** (`name.<pid>.<counter>.tmp`),
//!    so two writers targeting the same path can never clobber each
//!    other's in-flight bytes;
//! 2. **fsync the tmp file** (`File::sync_all`) before the rename — a
//!    crash immediately after "successful" save can otherwise leave a
//!    zero-length file under the real name once the rename metadata
//!    outruns the data blocks;
//! 3. atomically **rename** over the target;
//! 4. **fsync the parent directory** (unix), so the rename itself is
//!    durable.
//!
//! ## Fault injection
//!
//! Robustness code that is never executed is decoration. The soak
//! harness (and the fault-tolerance tests) install a [`FaultPlan`] for
//! the current thread via [`with_fault_plan`]; every durable write then
//! consults the plan and may be failed outright, torn (a prefix of the
//! bytes lands in the tmp file before the error), or slowed. Plans are
//! deterministic — rules match on the plan's own write-attempt counter
//! — so a seeded soak run injects the identical fault sequence every
//! time. The seam is thread-local (like `traj_obs`'s local recorder)
//! so parallel tests never see each other's faults.
//!
//! ## Retries
//!
//! Transient IO failures should not kill a serving loop, and unbounded
//! retries should not wedge it. [`durable_write_retry`] wraps
//! [`durable_write`] in a bounded retry loop with deterministic
//! exponential backoff and reports what happened in a [`WriteReceipt`];
//! callers decide what a final failure means (the soak loop degrades
//! the tick and tries again later).

use std::cell::RefCell;
use std::fmt;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Distinguishes the tmp files of concurrent writers; unique per write
/// within a process.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// What a [`FaultPlan`] rule does to a matched write attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// The write fails before any byte reaches the filesystem.
    FailWrite,
    /// A torn write: only `keep_fraction` of the bytes land in the tmp
    /// file (never renamed over the target) before the error surfaces —
    /// the on-disk shape of a crash mid-write.
    TornWrite {
        /// Fraction of the payload that lands on disk, clamped to
        /// `[0, 1)`.
        keep_fraction: f64,
    },
    /// The write succeeds after an injected stall of `millis` — models
    /// a saturated disk; visible in the write-latency histograms.
    SlowWrite {
        /// Injected stall, in milliseconds.
        millis: u64,
    },
}

impl WriteFault {
    /// Short taxonomy label for telemetry.
    pub fn name(&self) -> &'static str {
        match self {
            WriteFault::FailWrite => "fail_write",
            WriteFault::TornWrite { .. } => "torn_write",
            WriteFault::SlowWrite { .. } => "slow_write",
        }
    }
}

/// When a [`FaultPlan`] rule fires, in terms of the plan's write-attempt
/// counter (0-based, incremented on every durable write attempt made
/// while the plan is installed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultWhen {
    /// Exactly the `n`-th attempt.
    Nth(u64),
    /// Every attempt whose index is a positive multiple of `n`
    /// (attempt 0 is spared so the first write of a run can land).
    EveryNth(u64),
    /// Every attempt in `[from, to)`.
    Range(u64, u64),
}

impl FaultWhen {
    fn matches(&self, attempt: u64) -> bool {
        match *self {
            FaultWhen::Nth(n) => attempt == n,
            FaultWhen::EveryNth(n) => n > 0 && attempt > 0 && attempt.is_multiple_of(n),
            FaultWhen::Range(from, to) => attempt >= from && attempt < to,
        }
    }
}

/// One injection rule: a trigger plus the fault it injects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// Which write attempts this rule matches.
    pub when: FaultWhen,
    /// What happens to a matched attempt.
    pub fault: WriteFault,
}

/// A deterministic fault-injection plan over durable write attempts.
///
/// The plan owns its attempt counter, so the same plan installed over
/// the same code path always injects the same faults — seeded soak runs
/// are exactly reproducible. The first matching rule wins.
#[derive(Debug, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    attempts: AtomicU64,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A plan with no rules (counts attempts, injects nothing).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit rules.
    pub fn new(rules: Vec<FaultRule>) -> Self {
        FaultPlan { rules, ..FaultPlan::default() }
    }

    /// Durable write attempts observed so far.
    pub fn attempts(&self) -> u64 {
        self.attempts.load(Ordering::Relaxed)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consumes one attempt index and returns the fault to inject, if
    /// any.
    fn next_fault(&self) -> Option<WriteFault> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let hit = self.rules.iter().find(|r| r.when.matches(attempt)).map(|r| r.fault);
        if hit.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }
}

thread_local! {
    static PLAN: RefCell<Option<Arc<FaultPlan>>> = const { RefCell::new(None) };
}

/// Runs `f` with `plan` governing every [`durable_write`] on this
/// thread, restoring the previous plan (usually none) afterwards —
/// panic-safe via a drop guard, mirroring
/// `traj_obs::with_local_recorder`.
pub fn with_fault_plan<R>(plan: Arc<FaultPlan>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<FaultPlan>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            PLAN.with(|p| *p.borrow_mut() = self.0.take());
        }
    }
    let prev = PLAN.with(|p| p.borrow_mut().replace(plan));
    let _restore = Restore(prev);
    f()
}

fn current_fault() -> Option<WriteFault> {
    PLAN.with(|p| p.borrow().as_ref().map(|plan| plan.next_fault()))?
}

/// How a write (or a whole retry loop) ultimately fared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WriteReceipt {
    /// Write attempts performed (at least 1).
    pub attempts: u32,
    /// Faults observed across those attempts, by taxonomy label.
    pub faults_hit: Vec<&'static str>,
    /// Total injected stall from `SlowWrite` faults, milliseconds.
    pub slow_millis: u64,
}

/// Bounded retry with deterministic exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single attempt).
    pub max_retries: u32,
    /// Backoff before retry `i` (1-based) is `base_backoff_ms << (i-1)`,
    /// capped at [`RetryPolicy::max_backoff_ms`].
    pub base_backoff_ms: u64,
    /// Upper bound on a single backoff sleep.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 3, base_backoff_ms: 2, max_backoff_ms: 50 }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, no sleeping.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0, base_backoff_ms: 0, max_backoff_ms: 0 }
    }

    /// The backoff before 1-based retry `i`.
    pub fn backoff_ms(&self, i: u32) -> u64 {
        if self.base_backoff_ms == 0 {
            return 0;
        }
        self.base_backoff_ms
            .saturating_mul(1u64 << (i - 1).min(16))
            .min(self.max_backoff_ms)
    }
}

/// The unique tmp sibling for `path` this write will stage into.
fn tmp_sibling(path: &Path) -> PathBuf {
    let file = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
    let unique = TMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    path.with_file_name(format!("{file}.{}.{unique}.tmp", std::process::id()))
}

/// True when `name` looks like a stale staging file for `target_file`:
/// `target_file.<pid>.<counter>.tmp`.
fn is_tmp_of(name: &str, target_file: &str) -> bool {
    let Some(rest) = name.strip_prefix(target_file) else { return false };
    let Some(mid) = rest.strip_prefix('.').and_then(|r| r.strip_suffix(".tmp")) else {
        return false;
    };
    let mut parts = mid.split('.');
    let pid_ok = parts.next().is_some_and(|p| p.parse::<u64>().is_ok());
    let ctr_ok = parts.next().is_some_and(|c| c.parse::<u64>().is_ok());
    pid_ok && ctr_ok && parts.next().is_none()
}

/// Extracts the pid component of a `target.<pid>.<counter>.tmp` name.
fn tmp_pid(name: &str) -> Option<u64> {
    let mid = name.strip_suffix(".tmp")?;
    let mut rev = mid.rsplit('.');
    let _counter = rev.next()?.parse::<u64>().ok()?;
    rev.next()?.parse::<u64>().ok()
}

/// Removes stale staging leftovers for `target` — tmp siblings written
/// by *other* processes that crashed mid-save (this process's own
/// in-flight tmps are left alone, so concurrent same-process writers
/// are safe). Returns how many files were removed; IO errors while
/// scanning are swallowed (cleanup is best-effort by design).
pub fn clean_stale_tmps(target: &Path) -> usize {
    let Some(dir) = target.parent().filter(|d| !d.as_os_str().is_empty()) else { return 0 };
    let Some(target_file) = target.file_name().map(|n| n.to_string_lossy().into_owned()) else {
        return 0;
    };
    let Ok(entries) = std::fs::read_dir(dir) else { return 0 };
    let me = std::process::id() as u64;
    let mut removed = 0;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if !is_tmp_of(&name, &target_file) {
            continue;
        }
        if tmp_pid(&name) == Some(me) {
            continue;
        }
        if std::fs::remove_file(entry.path()).is_ok() {
            removed += 1;
        }
    }
    if removed > 0 && traj_obs::enabled() {
        traj_obs::counter("io.tmp_cleaned", removed as u64);
    }
    removed
}

fn fsync_parent(path: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            File::open(dir)?.sync_all()?;
        }
    }
    #[cfg(not(unix))]
    {
        let _ = path;
    }
    Ok(())
}

fn injected_err(fault: WriteFault) -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, format!("injected fault: {}", fault.name()))
}

/// One crash-safe write attempt of `bytes` to `path`: unique tmp,
/// write, `sync_all`, rename, parent-dir fsync. Consults the
/// thread-local [`FaultPlan`], if any. On failure the tmp file is
/// removed best-effort (a genuine crash would leave it; see
/// [`clean_stale_tmps`]).
pub fn durable_write(path: &Path, bytes: &[u8]) -> io::Result<WriteReceipt> {
    let mut receipt = WriteReceipt { attempts: 1, ..WriteReceipt::default() };
    let fault = current_fault();
    if let Some(f) = fault {
        receipt.faults_hit.push(f.name());
        if traj_obs::enabled() {
            traj_obs::counter("io.faults_injected", 1);
            traj_obs::event(
                "io.fault",
                &[("kind", f.name().into()), ("path", path.to_string_lossy().as_ref().into())],
            );
        }
    }
    match fault {
        Some(WriteFault::FailWrite) => return Err(injected_err(WriteFault::FailWrite)),
        Some(f @ WriteFault::TornWrite { keep_fraction }) => {
            // Leave a realistic torn prefix in a tmp file, then fail.
            // The target is never touched — exactly what the atomic
            // protocol guarantees about a crash mid-write.
            let keep = if keep_fraction.is_finite() { keep_fraction.clamp(0.0, 1.0) } else { 0.0 };
            // lint: allow(lossy-cast) — keep is clamped to [0, 1], so the product is within [0, len]
            let cut = ((bytes.len() as f64) * keep) as usize;
            let tmp = tmp_sibling(path);
            let _ = std::fs::write(&tmp, &bytes[..cut.min(bytes.len())]);
            return Err(injected_err(f));
        }
        Some(WriteFault::SlowWrite { millis }) => {
            receipt.slow_millis = millis;
            std::thread::sleep(std::time::Duration::from_millis(millis));
        }
        None => {}
    }
    let tmp = tmp_sibling(path);
    let write_all = |tmp: &Path| -> io::Result<()> {
        let mut f = File::create(tmp)?;
        f.write_all(bytes)?;
        // Data blocks must be on stable storage before the rename can
        // make the file visible under the real name.
        f.sync_all()
    };
    if let Err(e) = write_all(&tmp) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    fsync_parent(path)?;
    Ok(receipt)
}

/// [`durable_write`] under a bounded retry loop with deterministic
/// exponential backoff. Returns the merged [`WriteReceipt`] on success;
/// on exhaustion, the last error (the receipt's story so far is
/// reported through obs counters).
pub fn durable_write_retry(
    path: &Path,
    bytes: &[u8],
    policy: &RetryPolicy,
) -> io::Result<WriteReceipt> {
    let mut merged = WriteReceipt::default();
    let mut last_err = None;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            let backoff = policy.backoff_ms(attempt);
            if backoff > 0 {
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            if traj_obs::enabled() {
                traj_obs::counter("io.write_retries", 1);
            }
        }
        match durable_write(path, bytes) {
            Ok(r) => {
                merged.attempts += r.attempts;
                merged.faults_hit.extend(r.faults_hit);
                merged.slow_millis += r.slow_millis;
                return Ok(merged);
            }
            Err(e) => {
                merged.attempts += 1;
                if let Some(msg) = e.to_string().strip_prefix("injected fault: ") {
                    merged.faults_hit.push(match msg {
                        "fail_write" => "fail_write",
                        "torn_write" => "torn_write",
                        _ => "slow_write",
                    });
                }
                last_err = Some(e);
            }
        }
    }
    if traj_obs::enabled() {
        traj_obs::counter("io.write_gave_up", 1);
    }
    // lint: allow(unwrap) — the loop body ran at least once, so last_err is Some
    Err(last_err.unwrap())
}

impl fmt::Display for WriteReceipt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} attempt(s)", self.attempts)?;
        if !self.faults_hit.is_empty() {
            write!(f, ", faults: {}", self.faults_hit.join("+"))?;
        }
        if self.slow_millis > 0 {
            write!(f, ", {}ms injected stall", self.slow_millis)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("traj2hash_iofault_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tmp_leftovers(dir: &Path) -> Vec<String> {
        std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect()
    }

    #[test]
    fn plain_write_lands_and_leaves_no_tmp() {
        let dir = tdir("plain");
        let path = dir.join("blob.bin");
        let r = durable_write(&path, b"hello").unwrap();
        assert_eq!(r.attempts, 1);
        assert!(r.faults_hit.is_empty());
        assert_eq!(std::fs::read(&path).unwrap(), b"hello");
        assert!(tmp_leftovers(&dir).is_empty(), "tmp left behind");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fail_write_fault_leaves_previous_content_intact() {
        let dir = tdir("fail");
        let path = dir.join("blob.bin");
        durable_write(&path, b"generation-1").unwrap();
        let plan = Arc::new(FaultPlan::new(vec![FaultRule {
            when: FaultWhen::Nth(0),
            fault: WriteFault::FailWrite,
        }]));
        let err = with_fault_plan(plan.clone(), || durable_write(&path, b"generation-2"));
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        assert_eq!(plan.attempts(), 1);
        assert_eq!(plan.injected(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_never_touches_the_target() {
        let dir = tdir("torn");
        let path = dir.join("blob.bin");
        durable_write(&path, b"generation-1").unwrap();
        let plan = Arc::new(FaultPlan::new(vec![FaultRule {
            when: FaultWhen::Nth(0),
            fault: WriteFault::TornWrite { keep_fraction: 0.5 },
        }]));
        let err = with_fault_plan(plan, || durable_write(&path, b"generation-2-much-longer"));
        assert!(err.is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"generation-1");
        // The torn prefix is visible as a tmp leftover — the realistic
        // crash residue clean_stale_tmps exists for.
        assert_eq!(tmp_leftovers(&dir).len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let dir = tdir("retry");
        let path = dir.join("blob.bin");
        let plan = Arc::new(FaultPlan::new(vec![FaultRule {
            when: FaultWhen::Range(0, 2),
            fault: WriteFault::FailWrite,
        }]));
        let policy = RetryPolicy { max_retries: 3, base_backoff_ms: 0, max_backoff_ms: 0 };
        let receipt =
            with_fault_plan(plan, || durable_write_retry(&path, b"payload", &policy)).unwrap();
        assert_eq!(receipt.attempts, 3);
        assert_eq!(receipt.faults_hit, vec!["fail_write", "fail_write"]);
        assert_eq!(std::fs::read(&path).unwrap(), b"payload");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn retry_gives_up_after_budget() {
        let dir = tdir("giveup");
        let path = dir.join("blob.bin");
        let plan = Arc::new(FaultPlan::new(vec![FaultRule {
            when: FaultWhen::Range(0, 100),
            fault: WriteFault::FailWrite,
        }]));
        let policy = RetryPolicy { max_retries: 2, base_backoff_ms: 0, max_backoff_ms: 0 };
        let err = with_fault_plan(plan, || durable_write_retry(&path, b"payload", &policy));
        assert!(err.is_err());
        assert!(!path.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slow_write_succeeds_and_reports_stall() {
        let dir = tdir("slow");
        let path = dir.join("blob.bin");
        let plan = Arc::new(FaultPlan::new(vec![FaultRule {
            when: FaultWhen::Nth(0),
            fault: WriteFault::SlowWrite { millis: 1 },
        }]));
        let r = with_fault_plan(plan, || durable_write(&path, b"slow")).unwrap();
        assert_eq!(r.slow_millis, 1);
        assert_eq!(std::fs::read(&path).unwrap(), b"slow");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_tmp_cleanup_spares_own_pid_and_other_targets() {
        let dir = tdir("stale");
        let path = dir.join("model.ckpt");
        // A dead process's leftover, our own in-flight tmp, and an
        // unrelated file.
        std::fs::write(dir.join("model.ckpt.999999.3.tmp"), b"torn").unwrap();
        let mine = format!("model.ckpt.{}.7.tmp", std::process::id());
        std::fs::write(dir.join(&mine), b"inflight").unwrap();
        std::fs::write(dir.join("other.ckpt.999999.1.tmp"), b"x").unwrap();
        std::fs::write(dir.join("model.ckpt.nonsense.tmp"), b"x").unwrap();
        let removed = clean_stale_tmps(&path);
        assert_eq!(removed, 1);
        assert!(!dir.join("model.ckpt.999999.3.tmp").exists());
        assert!(dir.join(&mine).exists());
        assert!(dir.join("other.ckpt.999999.1.tmp").exists());
        assert!(dir.join("model.ckpt.nonsense.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_plan_sequence_is_deterministic() {
        let rules = vec![
            FaultRule { when: FaultWhen::EveryNth(3), fault: WriteFault::FailWrite },
            FaultRule { when: FaultWhen::Nth(1), fault: WriteFault::SlowWrite { millis: 0 } },
        ];
        let fire = |plan: &FaultPlan| -> Vec<Option<&'static str>> {
            (0..8).map(|_| plan.next_fault().map(|f| f.name())).collect()
        };
        let a = fire(&FaultPlan::new(rules.clone()));
        let b = fire(&FaultPlan::new(rules));
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![
                None,
                Some("slow_write"),
                None,
                Some("fail_write"),
                None,
                None,
                Some("fail_write"),
                None
            ]
        );
    }

    #[test]
    fn concurrent_writers_to_one_path_never_clobber() {
        let dir = tdir("concurrent");
        let path = dir.join("shared.bin");
        std::thread::scope(|s| {
            for w in 0..4u8 {
                let path = path.clone();
                s.spawn(move || {
                    let payload = vec![w; 1024];
                    for _ in 0..20 {
                        durable_write(&path, &payload).unwrap();
                    }
                });
            }
        });
        // Whatever write won, the file is exactly one writer's payload,
        // never interleaved bytes.
        let got = std::fs::read(&path).unwrap();
        assert_eq!(got.len(), 1024);
        assert!(got.iter().all(|&b| b == got[0]), "interleaved write detected");
        assert!(tmp_leftovers(&dir).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
