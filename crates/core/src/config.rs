//! Model and training configuration.

/// The read-out layer applied after the stacked attention blocks
/// (Section V-D, Fig. 4 compares these three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readout {
    /// Use the first token's embedding (Eq. 13) — justified by the
    /// endpoint lower bound of Lemma 1. The paper's choice for DTW and
    /// Fréchet; combined with reverse augmentation it covers both the
    /// first- and last-point bounds.
    LowerBound,
    /// Mean-pool all positions (TrajGAT's read-out; best for Hausdorff).
    Mean,
    /// Prepend a learned CLS token and use its output (BERT-style).
    Cls,
}

impl Readout {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Readout::LowerBound => "LowerBound",
            Readout::Mean => "Mean",
            Readout::Cls => "CLS",
        }
    }
}

/// Hyper-parameters of the Traj2Hash model (defaults follow Section V-A5,
/// scaled where noted).
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Latent dimensionality `d`; also the number of hash bits `d_h`
    /// (the paper sets both to 64).
    pub dim: usize,
    /// Number of stacked Attention–MLP blocks `m` (paper: 2).
    pub blocks: usize,
    /// Attention heads (paper: 4).
    pub heads: usize,
    /// Grid-channel embedding dimensionality.
    pub grid_dim: usize,
    /// Read-out layer of the GPS channel.
    pub readout: Readout,
    /// Include the light-weight grid channel (ablation `-Grids` disables).
    pub use_grids: bool,
    /// Apply reverse augmentation / concatenation (ablation `-RevAug`
    /// disables).
    pub use_rev_aug: bool,
    /// Fine grid cell size in meters (paper: 50 m).
    pub fine_cell_m: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            dim: 64,
            blocks: 2,
            heads: 4,
            grid_dim: 64,
            readout: Readout::LowerBound,
            use_grids: true,
            use_rev_aug: true,
            fine_cell_m: 50.0,
        }
    }
}

impl ModelConfig {
    /// A small configuration for CPU-scale experiments and tests.
    pub fn small() -> Self {
        ModelConfig { dim: 32, blocks: 2, heads: 2, grid_dim: 32, ..Default::default() }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            dim: 16,
            blocks: 1,
            heads: 2,
            grid_dim: 16,
            fine_cell_m: 100.0,
            ..Default::default()
        }
    }

    /// The `-Grids` ablation (Section V-D).
    pub fn without_grids(mut self) -> Self {
        self.use_grids = false;
        self
    }

    /// The `-RevAug` ablation (cumulative: also drops grids, matching the
    /// paper's "the ablated component in the former variant is also
    /// eliminated in the latter").
    pub fn without_rev_aug(mut self) -> Self {
        self.use_grids = false;
        self.use_rev_aug = false;
        self
    }
}

/// Hyper-parameters of the training run (Section V-A5).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Margin `alpha` of the ranking-based hashing objective (paper
    /// default: 5).
    pub alpha: f32,
    /// Balance weight `gamma` between WMSE and the hashing objectives
    /// (paper default: 6).
    pub gamma: f32,
    /// Samples per anchor `M` for the WMSE loss (paper: 10).
    pub samples_per_anchor: usize,
    /// Anchor batch size for the WMSE objective (paper: 20).
    pub batch_size: usize,
    /// Batch size over generated triplets (paper: 500; scaled here).
    pub triplet_batch: usize,
    /// Number of generated triplets to use per epoch.
    pub triplets_per_epoch: usize,
    /// Training epochs (paper max: 100; scaled here).
    pub epochs: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Initial HashNet relaxation scale `beta` (paper: 1, increased each
    /// iteration).
    pub beta0: f32,
    /// Additive increase of `beta` per epoch.
    pub beta_step: f32,
    /// Coarse cell size for fast triplet generation, meters (paper: 500).
    /// Also the bucket grid of the sparse supervision sweep.
    pub coarse_cell_m: f64,
    /// Stored neighbours per seed in the sparse similarity supervision:
    /// the pruned self-join keeps each anchor's `supervision_k` nearest
    /// exact distances and upper-bounds the rest by the pruning
    /// threshold. When `supervision_k >= seeds - 1` every pair is stored
    /// and the supervision is bit-identical to the dense matrix.
    pub supervision_k: usize,
    /// Similarity temperature target for `auto_theta` (median similarity).
    pub theta_target: f64,
    /// Disable the generated-triplet loss `L_t` (ablation `-Triplets`).
    pub use_triplets: bool,
    /// Gradient clipping threshold.
    pub clip_norm: f32,
    /// RNG seed for sampling and initialization.
    pub seed: u64,
    /// Compute validation HR@10 each epoch and keep the best parameters.
    pub validate: bool,
    /// Divergence guard: an epoch loss above `divergence_factor` times
    /// the last good epoch loss triggers a rollback (non-finite losses
    /// always do). Must exceed 1.
    pub divergence_factor: f32,
    /// Maximum rollback retries of a single epoch before training gives
    /// up with [`crate::TrainError::Diverged`].
    pub max_rollbacks: usize,
    /// Multiplier applied to the learning rate on each rollback
    /// (exponential backoff); must lie in `(0, 1)`.
    pub lr_backoff: f32,
    /// Write a checkpoint after every `checkpoint_every` completed
    /// epochs (0 disables periodic saves; a final checkpoint is still
    /// written whenever `checkpoint_path` is set).
    pub checkpoint_every: usize,
    /// Where to persist checkpoints; `None` disables checkpointing.
    pub checkpoint_path: Option<std::path::PathBuf>,
    /// When true and `checkpoint_path` names a valid checkpoint,
    /// training restores it and continues from the saved epoch instead
    /// of starting over.
    pub resume: bool,
    /// Worker threads for batch-gradient computation and corpus
    /// encoding. `0` means "use the available parallelism"; `1` stays
    /// single-threaded. Results are bit-identical for every setting —
    /// the batch is partitioned into thread-count-independent shards
    /// whose gradients are reduced in a fixed order.
    pub num_threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            alpha: 5.0,
            gamma: 6.0,
            samples_per_anchor: 10,
            batch_size: 20,
            triplet_batch: 64,
            triplets_per_epoch: 256,
            epochs: 12,
            lr: 1e-3,
            beta0: 1.0,
            beta_step: 0.5,
            coarse_cell_m: 500.0,
            supervision_k: 50,
            theta_target: 0.5,
            use_triplets: true,
            clip_norm: 5.0,
            seed: 7,
            validate: true,
            divergence_factor: 4.0,
            max_rollbacks: 3,
            lr_backoff: 0.5,
            checkpoint_every: 0,
            checkpoint_path: None,
            resume: false,
            num_threads: 1,
        }
    }
}

impl TrainConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            epochs: 3,
            triplets_per_epoch: 64,
            triplet_batch: 32,
            validate: false,
            ..Default::default()
        }
    }

    /// Resolves [`TrainConfig::num_threads`] to a concrete worker count:
    /// `0` maps to the machine's available parallelism (at least 1).
    pub fn resolved_threads(&self) -> usize {
        match self.num_threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }

    /// The `-Triplets` ablation (Section V-D): `L_t` eliminated. Combined
    /// with [`ModelConfig::without_rev_aug`] this reduces the model to a
    /// Transformer with the lower-bound read-out, as the paper states.
    pub fn without_triplets(mut self) -> Self {
        self.use_triplets = false;
        self
    }

    /// Checks every field is in its valid range, so a bad config is a
    /// typed error at the call site instead of an assert (or a silent
    /// NaN) deep inside the training loop.
    pub fn validate(&self) -> Result<(), crate::TrainError> {
        let fail = |msg: String| Err(crate::TrainError::InvalidConfig(msg));
        if self.epochs == 0 {
            return fail("epochs must be positive".into());
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return fail(format!("lr must be positive and finite, got {}", self.lr));
        }
        if self.batch_size == 0 {
            return fail("batch_size must be positive".into());
        }
        if self.samples_per_anchor == 0 {
            return fail("samples_per_anchor must be positive".into());
        }
        if !(self.beta0.is_finite() && self.beta0 > 0.0) {
            return fail(format!("beta0 must be positive and finite, got {}", self.beta0));
        }
        if !(self.beta_step.is_finite() && self.beta_step >= 0.0) {
            return fail(format!("beta_step must be non-negative, got {}", self.beta_step));
        }
        if !(self.alpha.is_finite() && self.alpha >= 0.0) {
            return fail(format!("alpha must be non-negative, got {}", self.alpha));
        }
        if !(self.gamma.is_finite() && self.gamma >= 0.0) {
            return fail(format!("gamma must be non-negative, got {}", self.gamma));
        }
        if !(self.clip_norm.is_finite() && self.clip_norm > 0.0) {
            return fail(format!("clip_norm must be positive, got {}", self.clip_norm));
        }
        if !(self.coarse_cell_m.is_finite() && self.coarse_cell_m > 0.0) {
            return fail(format!("coarse_cell_m must be positive, got {}", self.coarse_cell_m));
        }
        if self.supervision_k < self.samples_per_anchor {
            return fail(format!(
                "supervision_k must be at least samples_per_anchor ({}), got {}",
                self.samples_per_anchor, self.supervision_k
            ));
        }
        if !(self.theta_target.is_finite() && 0.0 < self.theta_target && self.theta_target < 1.0) {
            return fail(format!("theta_target must lie in (0, 1), got {}", self.theta_target));
        }
        if self.use_triplets && self.triplet_batch == 0 {
            return fail("triplet_batch must be positive when triplets are enabled".into());
        }
        if !(self.divergence_factor.is_finite() && self.divergence_factor > 1.0) {
            return fail(format!(
                "divergence_factor must exceed 1, got {}",
                self.divergence_factor
            ));
        }
        if !(self.lr_backoff.is_finite() && 0.0 < self.lr_backoff && self.lr_backoff < 1.0) {
            return fail(format!("lr_backoff must lie in (0, 1), got {}", self.lr_backoff));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let m = ModelConfig::default();
        assert_eq!(m.dim, 64);
        assert_eq!(m.blocks, 2);
        assert_eq!(m.heads, 4);
        assert_eq!(m.fine_cell_m, 50.0);
        let t = TrainConfig::default();
        assert_eq!(t.alpha, 5.0);
        assert_eq!(t.gamma, 6.0);
        assert_eq!(t.samples_per_anchor, 10);
        assert_eq!(t.batch_size, 20);
        assert_eq!(t.coarse_cell_m, 500.0);
        assert_eq!(t.lr, 1e-3);
    }

    #[test]
    fn default_config_validates() {
        assert!(TrainConfig::default().validate().is_ok());
        assert!(TrainConfig::tiny().validate().is_ok());
    }

    /// Every out-of-range field is rejected with a message naming it.
    #[test]
    fn validate_rejects_each_bad_field() {
        let ok = TrainConfig::default;
        let cases: Vec<(TrainConfig, &str)> = vec![
            (TrainConfig { epochs: 0, ..ok() }, "epochs"),
            (TrainConfig { lr: 0.0, ..ok() }, "lr"),
            (TrainConfig { lr: -1e-3, ..ok() }, "lr"),
            (TrainConfig { lr: f32::NAN, ..ok() }, "lr"),
            (TrainConfig { batch_size: 0, ..ok() }, "batch_size"),
            (TrainConfig { samples_per_anchor: 0, ..ok() }, "samples_per_anchor"),
            (TrainConfig { beta0: 0.0, ..ok() }, "beta0"),
            (TrainConfig { beta0: f32::INFINITY, ..ok() }, "beta0"),
            (TrainConfig { beta_step: -0.1, ..ok() }, "beta_step"),
            (TrainConfig { alpha: -1.0, ..ok() }, "alpha"),
            (TrainConfig { gamma: f32::NAN, ..ok() }, "gamma"),
            (TrainConfig { clip_norm: 0.0, ..ok() }, "clip_norm"),
            (TrainConfig { coarse_cell_m: 0.0, ..ok() }, "coarse_cell_m"),
            (TrainConfig { supervision_k: 0, ..ok() }, "supervision_k"),
            (TrainConfig { theta_target: 0.0, ..ok() }, "theta_target"),
            (TrainConfig { theta_target: 1.0, ..ok() }, "theta_target"),
            (TrainConfig { triplet_batch: 0, ..ok() }, "triplet_batch"),
            (TrainConfig { divergence_factor: 1.0, ..ok() }, "divergence_factor"),
            (TrainConfig { divergence_factor: f32::NAN, ..ok() }, "divergence_factor"),
            (TrainConfig { lr_backoff: 0.0, ..ok() }, "lr_backoff"),
            (TrainConfig { lr_backoff: 1.0, ..ok() }, "lr_backoff"),
        ];
        for (cfg, field) in cases {
            match cfg.validate() {
                Err(crate::TrainError::InvalidConfig(msg)) => assert!(
                    msg.contains(field),
                    "rejection for {field} should name the field, got: {msg}"
                ),
                other => panic!("expected InvalidConfig({field}), got {other:?}"),
            }
        }
    }

    #[test]
    fn triplet_batch_zero_is_fine_when_triplets_disabled() {
        let cfg = TrainConfig { triplet_batch: 0, ..TrainConfig::default() }.without_triplets();
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn ablations_are_cumulative() {
        let a = ModelConfig::default().without_grids();
        assert!(!a.use_grids && a.use_rev_aug);
        let b = ModelConfig::default().without_rev_aug();
        assert!(!b.use_grids && !b.use_rev_aug);
    }
}
