//! Model and training configuration.

/// The read-out layer applied after the stacked attention blocks
/// (Section V-D, Fig. 4 compares these three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readout {
    /// Use the first token's embedding (Eq. 13) — justified by the
    /// endpoint lower bound of Lemma 1. The paper's choice for DTW and
    /// Fréchet; combined with reverse augmentation it covers both the
    /// first- and last-point bounds.
    LowerBound,
    /// Mean-pool all positions (TrajGAT's read-out; best for Hausdorff).
    Mean,
    /// Prepend a learned CLS token and use its output (BERT-style).
    Cls,
}

impl Readout {
    /// Short name for experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Readout::LowerBound => "LowerBound",
            Readout::Mean => "Mean",
            Readout::Cls => "CLS",
        }
    }
}

/// Hyper-parameters of the Traj2Hash model (defaults follow Section V-A5,
/// scaled where noted).
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Latent dimensionality `d`; also the number of hash bits `d_h`
    /// (the paper sets both to 64).
    pub dim: usize,
    /// Number of stacked Attention–MLP blocks `m` (paper: 2).
    pub blocks: usize,
    /// Attention heads (paper: 4).
    pub heads: usize,
    /// Grid-channel embedding dimensionality.
    pub grid_dim: usize,
    /// Read-out layer of the GPS channel.
    pub readout: Readout,
    /// Include the light-weight grid channel (ablation `-Grids` disables).
    pub use_grids: bool,
    /// Apply reverse augmentation / concatenation (ablation `-RevAug`
    /// disables).
    pub use_rev_aug: bool,
    /// Fine grid cell size in meters (paper: 50 m).
    pub fine_cell_m: f64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            dim: 64,
            blocks: 2,
            heads: 4,
            grid_dim: 64,
            readout: Readout::LowerBound,
            use_grids: true,
            use_rev_aug: true,
            fine_cell_m: 50.0,
        }
    }
}

impl ModelConfig {
    /// A small configuration for CPU-scale experiments and tests.
    pub fn small() -> Self {
        ModelConfig { dim: 32, blocks: 2, heads: 2, grid_dim: 32, ..Default::default() }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        ModelConfig {
            dim: 16,
            blocks: 1,
            heads: 2,
            grid_dim: 16,
            fine_cell_m: 100.0,
            ..Default::default()
        }
    }

    /// The `-Grids` ablation (Section V-D).
    pub fn without_grids(mut self) -> Self {
        self.use_grids = false;
        self
    }

    /// The `-RevAug` ablation (cumulative: also drops grids, matching the
    /// paper's "the ablated component in the former variant is also
    /// eliminated in the latter").
    pub fn without_rev_aug(mut self) -> Self {
        self.use_grids = false;
        self.use_rev_aug = false;
        self
    }
}

/// Hyper-parameters of the training run (Section V-A5).
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Margin `alpha` of the ranking-based hashing objective (paper
    /// default: 5).
    pub alpha: f32,
    /// Balance weight `gamma` between WMSE and the hashing objectives
    /// (paper default: 6).
    pub gamma: f32,
    /// Samples per anchor `M` for the WMSE loss (paper: 10).
    pub samples_per_anchor: usize,
    /// Anchor batch size for the WMSE objective (paper: 20).
    pub batch_size: usize,
    /// Batch size over generated triplets (paper: 500; scaled here).
    pub triplet_batch: usize,
    /// Number of generated triplets to use per epoch.
    pub triplets_per_epoch: usize,
    /// Training epochs (paper max: 100; scaled here).
    pub epochs: usize,
    /// Adam learning rate (paper: 1e-3).
    pub lr: f32,
    /// Initial HashNet relaxation scale `beta` (paper: 1, increased each
    /// iteration).
    pub beta0: f32,
    /// Additive increase of `beta` per epoch.
    pub beta_step: f32,
    /// Coarse cell size for fast triplet generation, meters (paper: 500).
    pub coarse_cell_m: f64,
    /// Similarity temperature target for `auto_theta` (median similarity).
    pub theta_target: f64,
    /// Disable the generated-triplet loss `L_t` (ablation `-Triplets`).
    pub use_triplets: bool,
    /// Gradient clipping threshold.
    pub clip_norm: f32,
    /// RNG seed for sampling and initialization.
    pub seed: u64,
    /// Compute validation HR@10 each epoch and keep the best parameters.
    pub validate: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            alpha: 5.0,
            gamma: 6.0,
            samples_per_anchor: 10,
            batch_size: 20,
            triplet_batch: 64,
            triplets_per_epoch: 256,
            epochs: 12,
            lr: 1e-3,
            beta0: 1.0,
            beta_step: 0.5,
            coarse_cell_m: 500.0,
            theta_target: 0.5,
            use_triplets: true,
            clip_norm: 5.0,
            seed: 7,
            validate: true,
        }
    }
}

impl TrainConfig {
    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        TrainConfig {
            epochs: 3,
            triplets_per_epoch: 64,
            triplet_batch: 32,
            validate: false,
            ..Default::default()
        }
    }

    /// The `-Triplets` ablation (Section V-D): `L_t` eliminated. Combined
    /// with [`ModelConfig::without_rev_aug`] this reduces the model to a
    /// Transformer with the lower-bound read-out, as the paper states.
    pub fn without_triplets(mut self) -> Self {
        self.use_triplets = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let m = ModelConfig::default();
        assert_eq!(m.dim, 64);
        assert_eq!(m.blocks, 2);
        assert_eq!(m.heads, 4);
        assert_eq!(m.fine_cell_m, 50.0);
        let t = TrainConfig::default();
        assert_eq!(t.alpha, 5.0);
        assert_eq!(t.gamma, 6.0);
        assert_eq!(t.samples_per_anchor, 10);
        assert_eq!(t.batch_size, 20);
        assert_eq!(t.coarse_cell_m, 500.0);
        assert_eq!(t.lr, 1e-3);
    }

    #[test]
    fn ablations_are_cumulative() {
        let a = ModelConfig::default().without_grids();
        assert!(!a.use_grids && a.use_rev_aug);
        let b = ModelConfig::default().without_rev_aug();
        assert!(!b.use_grids && !b.use_rev_aug);
    }
}
