//! # traj2hash — learning to hash for trajectory similarity
//!
//! Reproduction of *"Learning to Hash for Trajectory Similarity
//! Computation and Search"* (ICDE 2024). The model encodes a trajectory
//! into a Euclidean embedding `h_f^T` whose pairwise distances
//! approximate a chosen trajectory measure (DTW / Fréchet / Hausdorff),
//! and simultaneously into a binary code `z^T = sign(h_f^T)` for fast
//! Hamming-space top-k search.
//!
//! ## Quick start
//!
//! ```no_run
//! use traj2hash::{ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData, train};
//! use traj_data::{CityParams, Dataset, SplitSizes};
//! use traj_dist::Measure;
//!
//! let dataset = Dataset::generate(CityParams::porto_like(), SplitSizes::small(), 42);
//! let cfg = ModelConfig::small();
//! let ctx = ModelContext::prepare(&dataset.training_visible(), &cfg, 42);
//! let mut model = Traj2Hash::new(cfg, &ctx, 42);
//! let data = TrainData::prepare(&dataset, Measure::Frechet, &TrainConfig::default())
//!     .expect("supervision");
//! let report = train(&mut model, &data, &TrainConfig::default()).expect("training");
//! println!("best epoch: {}", report.best_epoch);
//! let code = model.hash_signs(&dataset.query[0]);
//! assert_eq!(code.len(), model.embedding_dim());
//! ```
//!
//! ## Fault tolerance
//!
//! Training survives the failure modes that actually occur at scale:
//! bad hyper-parameters are rejected up front
//! ([`TrainConfig::validate`]), diverging epochs roll back to the last
//! good state with a reduced learning rate (recorded as
//! [`RecoveryEvent`]s in the [`TrainReport`]), and the full training
//! state — parameters, Adam moments, scheduler position, history — can
//! be persisted to a checksummed [`checkpoint`] file and resumed after
//! a crash via [`TrainConfig::resume`].

#![warn(missing_docs)]

pub mod checkpoint;
pub mod config;
pub mod encoder;
pub mod error;
pub mod iofault;
pub mod loss;
pub mod model;
mod plan;
pub mod trainer;

pub use checkpoint::{Checkpoint, CheckpointError, RecoveryEvent, RecoveryKind};
pub use config::{ModelConfig, Readout, TrainConfig};
pub use error::TrainError;
pub use iofault::{
    clean_stale_tmps, durable_write, durable_write_retry, with_fault_plan, FaultPlan, FaultRule,
    FaultWhen, RetryPolicy, WriteFault, WriteReceipt,
};
pub use model::{ModelContext, ModelSpec, Traj2Hash};
pub use trainer::{
    train, train_with_hooks, validation_hr10, TrainData, TrainHooks, TrainReport,
};
