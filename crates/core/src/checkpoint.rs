//! Versioned, checksummed training checkpoints.
//!
//! Long-running hash training under the HashNet `tanh(beta x)`
//! continuation is exactly the regime where late-training divergence
//! bites: beta grows every epoch, gradients sharpen, and one bad batch
//! can blow the loss up to NaN. The trainer therefore persists its
//! full state — parameter values, Adam moments, scheduler position,
//! the best-so-far snapshot, and the recovery log — in a hand-rolled
//! binary format that can be validated end-to-end before a single
//! tensor is touched.
//!
//! ## Format
//!
//! ```text
//! magic    8 bytes  b"T2HCKPT1"
//! version  u32 LE   currently 1
//! length   u64 LE   payload byte count
//! crc32    u32 LE   CRC-32/ISO-HDLC of the payload
//! payload  `length` bytes (field layout below)
//! ```
//!
//! The payload is a fixed field sequence (all scalars little-endian,
//! all vectors length-prefixed with a `u64`): epoch, Adam step count,
//! triplet cursor, learning rate, best epoch, optional best validation
//! score, the `TNS1` parameter+moment blob, the `TNN1` best-parameter
//! blob, per-epoch losses, per-epoch validation scores, and the
//! recovery event log.
//!
//! Decoding is strict: a truncated file, a flipped bit, a wrong
//! version, or trailing garbage each produce a typed
//! [`CheckpointError`] — never silently corrupt parameters.

use std::fmt;
use std::path::Path;

/// Magic prefix of every checkpoint file.
pub const MAGIC: &[u8; 8] = b"T2HCKPT1";

/// Current format version.
pub const VERSION: u32 = 1;

/// Why a checkpoint failed to decode.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io(std::io::Error),
    /// The blob is shorter than the fixed header.
    TooShort,
    /// The magic prefix is wrong — not a checkpoint file.
    BadMagic,
    /// The version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The header's payload length disagrees with the file size.
    LengthMismatch {
        /// Length the header promises.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The payload checksum does not match — bit rot or truncation.
    ChecksumMismatch {
        /// Checksum stored in the header.
        expected: u32,
        /// Checksum of the payload as read.
        got: u32,
    },
    /// The payload ended mid-field or a field had an impossible value.
    Malformed(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CheckpointError::TooShort => write!(f, "checkpoint shorter than header"),
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v} (this build reads <= {VERSION})")
            }
            CheckpointError::LengthMismatch { expected, got } => {
                write!(f, "checkpoint length mismatch: header says {expected}, file has {got}")
            }
            CheckpointError::ChecksumMismatch { expected, got } => {
                write!(f, "checkpoint checksum mismatch: header {expected:#010x}, payload {got:#010x}")
            }
            CheckpointError::Malformed(s) => write!(f, "malformed checkpoint payload: {s}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial), computed with a
/// lazily-built 256-entry table.
pub fn crc32(bytes: &[u8]) -> u32 {
    const fn build_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            // lint: allow(lossy-cast) — table index i < 256 (const-fn loop bound)
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = build_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        // lint: allow(lossy-cast) — b widens from u8; the table index is masked to 8 bits
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// What kind of loss anomaly triggered a rollback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// The epoch loss came back NaN or infinite.
    NonFiniteLoss,
    /// The epoch loss spiked past the configured divergence factor.
    LossSpike,
}

impl fmt::Display for RecoveryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryKind::NonFiniteLoss => write!(f, "non-finite loss"),
            RecoveryKind::LossSpike => write!(f, "loss spike"),
        }
    }
}

/// One rollback performed by the divergence guard.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Epoch whose loss triggered the rollback.
    pub epoch: usize,
    /// What the anomaly was.
    pub kind: RecoveryKind,
    /// The offending loss value (NaN survives the round-trip as NaN).
    pub loss: f32,
    /// Epoch whose snapshot was restored.
    pub restored_epoch: usize,
    /// Learning rate in effect after the backoff.
    pub lr_after: f32,
}

/// A decoded checkpoint: everything needed to resume training.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Next epoch to run (epochs `0..epoch` are complete).
    pub epoch: usize,
    /// Adam step counter at the snapshot.
    pub adam_steps: u64,
    /// Position in the generated-triplet stream.
    pub triplet_cursor: usize,
    /// Learning rate in effect (may be lower than configured after
    /// divergence backoffs).
    pub lr: f32,
    /// Epoch of the best validation score so far.
    pub best_epoch: usize,
    /// Best validation HR@10 so far, if validation ran.
    pub best_val: Option<f64>,
    /// `TNS1` blob: parameter values + Adam moments at the snapshot.
    pub params_state: Vec<u8>,
    /// `TNN1` blob: parameter values of the best epoch.
    pub best_params: Vec<u8>,
    /// Mean combined loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation HR@10 of each completed epoch.
    pub val_hr10: Vec<f64>,
    /// Every rollback performed so far.
    pub recoveries: Vec<RecoveryEvent>,
}

/// Little-endian payload builder for the container format.
///
/// Shared by the trainer checkpoints here and the engine snapshots in
/// `traj-engine`; any other serialized artifact should build on it too
/// so every on-disk format gets the same header + CRC discipline.
#[derive(Default)]
pub struct PayloadWriter(Vec<u8>);

impl PayloadWriter {
    /// Starts an empty payload.
    pub fn new() -> Self {
        PayloadWriter(Vec::new())
    }
    /// Appends a raw byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f32`.
    pub fn f32(&mut self, v: f32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    pub fn f64(&mut self, v: f64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64` length prefix followed by the raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.0.extend_from_slice(v);
    }
    /// Consumes the writer, yielding the payload bytes.
    pub fn into_payload(self) -> Vec<u8> {
        self.0
    }
}

/// Strict cursor over a validated payload. Every accessor fails with
/// [`CheckpointError::Malformed`] instead of panicking or reading
/// out of bounds.
pub struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Starts reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        PayloadReader { bytes, pos: 0 }
    }
    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "field at offset {} needs {n} bytes, {} remain",
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }
    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CheckpointError> {
        // lint: allow(unwrap) — take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> Result<f32, CheckpointError> {
        // lint: allow(unwrap) — take(4) returned exactly 4 bytes
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    /// Reads a little-endian `f64`.
    pub fn f64(&mut self) -> Result<f64, CheckpointError> {
        // lint: allow(unwrap) — take(8) returned exactly 8 bytes
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    /// Reads a `u64` that the format stores as a machine-word quantity
    /// (an epoch number, a cursor, a count), rejecting values that do
    /// not fit a `usize` on this platform instead of silently
    /// truncating them. `what` names the field in the error.
    pub fn u64_usize(&mut self, what: &str) -> Result<usize, CheckpointError> {
        let raw = self.u64()?;
        usize::try_from(raw).map_err(|_| {
            CheckpointError::Malformed(format!("{what} {raw} does not fit usize"))
        })
    }
    /// Reads a `u64` element count for a vector of `elem_size`-byte
    /// elements, rejecting counts that could not possibly fit in the
    /// payload before the caller allocates.
    pub fn len_prefix(&mut self, elem_size: usize) -> Result<usize, CheckpointError> {
        let n = self.u64_usize("length prefix")?;
        // Reject absurd lengths before allocating.
        if n.saturating_mul(elem_size.max(1)) > self.bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "length prefix {n} exceeds payload size"
            )));
        }
        Ok(n)
    }
    /// Reads a length-prefixed byte blob (inverse of
    /// [`PayloadWriter::bytes`]).
    pub fn blob(&mut self) -> Result<Vec<u8>, CheckpointError> {
        let n = self.len_prefix(1)?;
        Ok(self.take(n)?.to_vec())
    }
    /// Fails unless every payload byte has been consumed — trailing
    /// garbage means the payload does not have the layout the caller
    /// thinks it has.
    pub fn expect_end(&self) -> Result<(), CheckpointError> {
        if self.pos != self.bytes.len() {
            return Err(CheckpointError::Malformed(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Wraps `payload` in the standard container: `magic`, `version`, a
/// `u64` payload length, and the payload's CRC-32, followed by the
/// payload itself.
pub fn encode_container(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates a container end-to-end — magic, version range, length,
/// checksum — and returns `(version, payload)` without copying.
///
/// Accepted versions are `1..=max_version`; anything else is
/// [`CheckpointError::UnsupportedVersion`]. A wrong magic is
/// [`CheckpointError::BadMagic`] — the file belongs to some other
/// format (or to none), so no further validation is attempted.
pub fn decode_container<'a>(
    bytes: &'a [u8],
    magic: &[u8; 8],
    max_version: u32,
) -> Result<(u32, &'a [u8]), CheckpointError> {
    if bytes.len() < magic.len() + 4 + 8 + 4 {
        return Err(CheckpointError::TooShort);
    }
    if &bytes[..8] != magic {
        return Err(CheckpointError::BadMagic);
    }
    // lint: allow(unwrap) — header length was checked above; these slices are exact
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version == 0 || version > max_version {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    // lint: allow(unwrap) — 8-byte slice of a length-checked header
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    // lint: allow(unwrap) — 4-byte slice of a length-checked header
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    let payload = &bytes[24..];
    if payload.len() as u64 != payload_len {
        return Err(CheckpointError::LengthMismatch {
            expected: payload_len,
            got: payload.len() as u64,
        });
    }
    let got_crc = crc32(payload);
    if got_crc != stored_crc {
        return Err(CheckpointError::ChecksumMismatch { expected: stored_crc, got: got_crc });
    }
    Ok((version, payload))
}

impl Checkpoint {
    /// Encodes the checkpoint: header + checksummed payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = PayloadWriter::new();
        w.u64(self.epoch as u64);
        w.u64(self.adam_steps);
        w.u64(self.triplet_cursor as u64);
        w.f32(self.lr);
        w.u64(self.best_epoch as u64);
        match self.best_val {
            Some(v) => {
                w.u8(1);
                w.f64(v);
            }
            None => {
                w.u8(0);
                w.f64(0.0);
            }
        }
        w.bytes(&self.params_state);
        w.bytes(&self.best_params);
        w.u64(self.epoch_losses.len() as u64);
        for &l in &self.epoch_losses {
            w.f32(l);
        }
        w.u64(self.val_hr10.len() as u64);
        for &v in &self.val_hr10 {
            w.f64(v);
        }
        w.u64(self.recoveries.len() as u64);
        for r in &self.recoveries {
            w.u64(r.epoch as u64);
            w.u8(match r.kind {
                RecoveryKind::NonFiniteLoss => 0,
                RecoveryKind::LossSpike => 1,
            });
            w.f32(r.loss);
            w.u64(r.restored_epoch as u64);
            w.f32(r.lr_after);
        }
        encode_container(MAGIC, VERSION, &w.into_payload())
    }

    /// Decodes and fully validates a checkpoint blob.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let (_, payload) = decode_container(bytes, MAGIC, VERSION)?;
        let mut r = PayloadReader::new(payload);
        let epoch = r.u64_usize("epoch")?;
        let adam_steps = r.u64()?;
        let triplet_cursor = r.u64_usize("triplet cursor")?;
        let lr = r.f32()?;
        let best_epoch = r.u64_usize("best epoch")?;
        let has_best = r.u8()?;
        let best_raw = r.f64()?;
        let best_val = match has_best {
            0 => None,
            1 => Some(best_raw),
            t => return Err(CheckpointError::Malformed(format!("bad option tag {t}"))),
        };
        let params_state = r.blob()?;
        let best_params = r.blob()?;
        let n = r.len_prefix(4)?;
        let mut epoch_losses = Vec::with_capacity(n);
        for _ in 0..n {
            epoch_losses.push(r.f32()?);
        }
        let n = r.len_prefix(8)?;
        let mut val_hr10 = Vec::with_capacity(n);
        for _ in 0..n {
            val_hr10.push(r.f64()?);
        }
        let n = r.len_prefix(25)?;
        let mut recoveries = Vec::with_capacity(n);
        for _ in 0..n {
            let epoch = r.u64_usize("recovery epoch")?;
            let kind = match r.u8()? {
                0 => RecoveryKind::NonFiniteLoss,
                1 => RecoveryKind::LossSpike,
                t => return Err(CheckpointError::Malformed(format!("bad recovery kind {t}"))),
            };
            let loss = r.f32()?;
            let restored_epoch = r.u64_usize("restored epoch")?;
            let lr_after = r.f32()?;
            recoveries.push(RecoveryEvent { epoch, kind, loss, restored_epoch, lr_after });
        }
        r.expect_end()?;
        Ok(Checkpoint {
            epoch,
            adam_steps,
            triplet_cursor,
            lr,
            best_epoch,
            best_val,
            params_state,
            best_params,
            epoch_losses,
            val_hr10,
            recoveries,
        })
    }

    /// Writes the checkpoint to `path` atomically and durably: encode
    /// to a unique per-process `.tmp` sibling, `fsync` it, rename over
    /// the target, and `fsync` the parent directory (unix), so neither
    /// a crash mid-write nor a crash immediately after the save can
    /// leave a truncated or zero-length checkpoint under the real name.
    /// Goes through [`crate::iofault::durable_write`], so fault plans
    /// installed by tests and soak drills apply.
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let t0 = traj_obs::enabled().then(std::time::Instant::now);
        let bytes = self.encode();
        let len = bytes.len();
        crate::iofault::durable_write(path, &bytes)?;
        if let Some(t0) = t0 {
            traj_obs::counter("ckpt.writes", 1);
            traj_obs::counter("ckpt.bytes_written", len as u64);
            traj_obs::observe_secs("ckpt.write_secs", t0.elapsed().as_secs_f64());
        }
        Ok(())
    }

    /// Reads and validates a checkpoint from `path`. Stale staging
    /// leftovers (`path.<pid>.<n>.tmp` from crashed writers) are
    /// cleaned up along the way — they are never read.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let path = path.as_ref();
        let t0 = traj_obs::enabled().then(std::time::Instant::now);
        crate::iofault::clean_stale_tmps(path);
        let bytes = std::fs::read(path)?;
        let decoded = Checkpoint::decode(&bytes);
        if let Some(t0) = t0 {
            traj_obs::counter("ckpt.reads", 1);
            traj_obs::counter("ckpt.bytes_read", bytes.len() as u64);
            traj_obs::observe_secs("ckpt.read_secs", t0.elapsed().as_secs_f64());
            if let Err(CheckpointError::ChecksumMismatch { .. }) = &decoded {
                traj_obs::counter("ckpt.checksum_failures", 1);
            }
        }
        decoded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            epoch: 7,
            adam_steps: 4242,
            triplet_cursor: 999,
            lr: 5e-4,
            best_epoch: 5,
            best_val: Some(0.625),
            params_state: vec![1, 2, 3, 4, 5],
            best_params: vec![9, 8, 7],
            epoch_losses: vec![1.5, 0.9, f32::NAN, 0.7],
            val_hr10: vec![0.1, 0.4],
            recoveries: vec![RecoveryEvent {
                epoch: 2,
                kind: RecoveryKind::NonFiniteLoss,
                loss: f32::NAN,
                restored_epoch: 1,
                lr_after: 5e-4,
            }],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let c = sample();
        let d = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(d.epoch, 7);
        assert_eq!(d.adam_steps, 4242);
        assert_eq!(d.triplet_cursor, 999);
        assert_eq!(d.lr, 5e-4);
        assert_eq!(d.best_epoch, 5);
        assert_eq!(d.best_val, Some(0.625));
        assert_eq!(d.params_state, vec![1, 2, 3, 4, 5]);
        assert_eq!(d.best_params, vec![9, 8, 7]);
        assert_eq!(d.epoch_losses.len(), 4);
        assert!(d.epoch_losses[2].is_nan());
        assert_eq!(d.val_hr10, vec![0.1, 0.4]);
        assert_eq!(d.recoveries.len(), 1);
        assert_eq!(d.recoveries[0].kind, RecoveryKind::NonFiniteLoss);
        assert!(d.recoveries[0].loss.is_nan());
    }

    #[test]
    fn none_best_val_roundtrips() {
        let mut c = sample();
        c.best_val = None;
        let d = Checkpoint::decode(&c.encode()).unwrap();
        assert_eq!(d.best_val, None);
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard CRC-32/ISO-HDLC test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bit_flip_anywhere_in_payload_is_detected() {
        let blob = sample().encode();
        for byte in 24..blob.len() {
            let mut bad = blob.clone();
            bad[byte] ^= 0x40;
            match Checkpoint::decode(&bad) {
                Err(CheckpointError::ChecksumMismatch { .. }) => {}
                other => panic!("flip at byte {byte} gave {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let blob = sample().encode();
        for keep in 0..blob.len() {
            assert!(
                Checkpoint::decode(&blob[..keep]).is_err(),
                "truncation to {keep} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let blob = sample().encode();
        let mut bad = blob.clone();
        bad[0] = b'X';
        assert!(matches!(Checkpoint::decode(&bad), Err(CheckpointError::BadMagic)));
        let mut newer = blob.clone();
        newer[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Checkpoint::decode(&newer),
            Err(CheckpointError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn file_roundtrip_is_atomic_and_readable() {
        let dir = std::env::temp_dir().join("traj2hash_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        sample().write_to_file(&path).unwrap();
        let d = Checkpoint::read_from_file(&path).unwrap();
        assert_eq!(d.epoch, 7);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
