//! End-to-end training of Traj2Hash (Section IV-F): WMSE on the seed
//! distance matrix + ranking-based hashing objective + generated-triplet
//! objective, combined as `L = L_s + gamma * (L_r + L_t)` (Eq. 21),
//! optimized with Adam under the HashNet `tanh(beta x)` continuation.
//!
//! The trainer is fault-tolerant: every completed epoch snapshots the
//! full optimizer state in memory, a divergence guard rolls back and
//! halves the learning rate when an epoch loss goes non-finite or
//! spikes (the `tanh(beta x)` continuation sharpens gradients every
//! epoch, which is exactly where late-training blow-ups live), and the
//! whole state can be persisted to a checksummed on-disk checkpoint
//! (see [`crate::checkpoint`]) and resumed with `TrainConfig::resume`.

use crate::checkpoint::{Checkpoint, RecoveryEvent, RecoveryKind};
use crate::config::TrainConfig;
use crate::error::TrainError;
use crate::loss::{approx_similarity, ranking_hash_loss, wmse_term};
use crate::model::Traj2Hash;
use crate::plan::{triplet_plan, wmse_plan, BatchPlan, LossTerm};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::mpsc;
use tinynn::{clip_grad_norm, verify_tape, Adam, Param, Tape, Tensor, Var};
use traj_data::{Dataset, Trajectory};
use traj_dist::{
    auto_theta_sparse, pruned_self_top_k, sparse_similarity, Measure, PrunedTopK, SparseDistances,
    SparseSimilarity,
};
use traj_grid::{generate_triplets, GridSpec, Triplet};

/// Supervision assembled once before training.
pub struct TrainData {
    /// Seed trajectories.
    pub seeds: Vec<Trajectory>,
    /// Sparse similarity supervision `S` over the seeds (Eq. 17's
    /// targets): each anchor's `supervision_k` nearest pairs stored
    /// exactly, everything else upper-bounded by the row's pruning floor.
    pub sim: SparseSimilarity,
    /// The exact distances the pruned self-join computed and kept
    /// (diagnostics; the diagonal is implicit zero).
    pub dist: SparseDistances,
    /// Unlabelled corpus used by the fast triplet generation.
    pub corpus: Vec<Trajectory>,
    /// Generated `(anchor, positive, negative)` corpus triplets.
    pub triplets: Vec<Triplet>,
    /// Validation trajectories.
    pub validation: Vec<Trajectory>,
    /// Indices of validation trajectories used as queries.
    pub val_queries: Vec<usize>,
    /// Exact top-10 neighbours of each validation query within the
    /// validation set (ground truth for model selection).
    pub val_truth: Vec<Vec<usize>>,
}

impl TrainData {
    /// Computes all supervision via the bucket-pruned sparse pipeline:
    /// the pruned exact self-join over the seeds (each anchor keeps its
    /// `supervision_k` nearest distances; see `traj_dist::sparse` for
    /// the exactness argument), its sparse similarity transform, the
    /// coarse-grid triplets, and the validation ground truth through the
    /// same pruned driver. Nothing here is O(seeds²) unless the corpus
    /// is so small that nothing prunes — in which case the supervision
    /// is bit-identical to the dense matrices it replaced.
    ///
    /// Returns [`TrainError::EmptyCorpus`] when the dataset has no
    /// corpus trajectories to generate triplets from,
    /// [`TrainError::TooFewSeeds`] when the similarity supervision
    /// would be degenerate, and [`TrainError::Supervision`] when the
    /// pruned sweep itself fails.
    pub fn prepare(
        dataset: &Dataset,
        measure: Measure,
        cfg: &TrainConfig,
    ) -> Result<TrainData, TrainError> {
        cfg.validate()?;
        if dataset.seeds.len() < 2 {
            return Err(TrainError::TooFewSeeds { got: dataset.seeds.len() });
        }
        let sup_cfg = PrunedTopK::new(cfg.supervision_k)
            .with_cell_m(cfg.coarse_cell_m)
            .keeping_distances();
        let sup = pruned_self_top_k(&dataset.seeds, measure, &sup_cfg)?;
        let dist = sup
            .distances
            .expect("keeping_distances() guarantees the sweep retains its distances");
        let theta = auto_theta_sparse(&dist, cfg.theta_target);
        let sim = sparse_similarity(&dist, theta);

        let bbox = traj_data::BoundingBox::of_dataset(&dataset.corpus)
            .ok_or(TrainError::EmptyCorpus)?;
        let coarse = GridSpec::new(bbox, cfg.coarse_cell_m);
        let triplets = generate_triplets(&dataset.corpus, &coarse, 20_000, cfg.seed);

        let n_queries = dataset.validation.len().min(40);
        let val_queries: Vec<usize> = (0..n_queries).collect();
        let val_cfg = PrunedTopK::new(10).with_cell_m(cfg.coarse_cell_m);
        let mut val_top = pruned_self_top_k(&dataset.validation, measure, &val_cfg)?.top_k;
        val_top.truncate(n_queries);
        let val_truth = val_top;

        Ok(TrainData {
            seeds: dataset.seeds.clone(),
            sim,
            dist,
            corpus: dataset.corpus.clone(),
            triplets,
            validation: dataset.validation.clone(),
            val_queries,
            val_truth,
        })
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation HR@10 per epoch (empty when validation is disabled).
    pub val_hr10: Vec<f64>,
    /// Epoch whose parameters were kept.
    pub best_epoch: usize,
    /// Best validation HR@10, when validation ran.
    pub best_val: Option<f64>,
    /// Number of generated triplets available.
    pub triplet_count: usize,
    /// Total wall-clock seconds.
    pub seconds: f64,
    /// Every divergence rollback the guard performed.
    pub recoveries: Vec<RecoveryEvent>,
    /// Epoch training continued from, when a checkpoint was resumed.
    pub resumed_from_epoch: Option<usize>,
    /// Learning rate at the end of training (lower than configured when
    /// divergence backoffs fired).
    pub final_lr: f32,
    /// Worker threads actually used for batch gradients and validation
    /// encoding (the resolution of `TrainConfig::num_threads`).
    pub threads_used: usize,
    /// Where the wall-clock went, phase by phase.
    pub timings: TrainTimings,
}

/// Wall-clock breakdown of a training run. This is the single source of
/// truth the bench binaries and `microprof` read — the same numbers the
/// obs layer exports when a recorder is installed.
#[derive(Debug, Clone, Default)]
pub struct TrainTimings {
    /// Seconds spent in each *accepted* epoch (index-aligned with
    /// `TrainReport::epoch_losses`; excludes validation).
    pub epoch_seconds: Vec<f64>,
    /// Total seconds encoding + scoring the validation set.
    pub validation_seconds: f64,
    /// Total seconds writing checkpoints.
    pub checkpoint_seconds: f64,
    /// Seconds burnt in epoch attempts the divergence guard discarded.
    pub rolled_back_seconds: f64,
    /// Total optimizer batches run (accepted epochs only).
    pub batches: usize,
}

/// Optional instrumentation hooks for a training run. Used by the
/// fault-injection tests to perturb the observed epoch loss and so
/// exercise the divergence guard; production callers leave this empty.
#[derive(Default)]
pub struct TrainHooks<'a> {
    /// Maps `(epoch, mean_epoch_loss)` to the loss value the divergence
    /// guard should see. Identity when absent.
    #[allow(clippy::type_complexity)]
    pub on_epoch_loss: Option<Box<dyn FnMut(usize, f32) -> f32 + 'a>>,
}

impl<'a> TrainHooks<'a> {
    /// Hooks that observe/transform the per-epoch loss.
    pub fn with_loss_hook(f: impl FnMut(usize, f32) -> f32 + 'a) -> Self {
        TrainHooks { on_epoch_loss: Some(Box::new(f)) }
    }
}

/// Validation HR@10 in Euclidean space over the prepared validation set.
pub fn validation_hr10(model: &Traj2Hash, data: &TrainData) -> f64 {
    validation_hr10_with_threads(model, data, 1)
}

/// [`validation_hr10`] with the validation set encoded across `threads`
/// worker threads. Bit-identical to the single-threaded path (each
/// embedding is an independent forward pass).
pub fn validation_hr10_with_threads(model: &Traj2Hash, data: &TrainData, threads: usize) -> f64 {
    let embeddings = model.embed_all_with_threads(&data.validation, threads);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (qi, &q) in data.val_queries.iter().enumerate() {
        let qe = &embeddings[q];
        let mut order: Vec<usize> =
            (0..data.validation.len()).filter(|&j| j != q).collect();
        let d2 = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        // total_cmp: a poisoned (NaN) embedding distance sorts last
        // instead of anywhere the comparator happens to leave it.
        order.sort_by(|&a, &b| d2(qe, &embeddings[a]).total_cmp(&d2(qe, &embeddings[b])));
        let predicted = &order[..10.min(order.len())];
        let truth = &data.val_truth[qi];
        hits += predicted.iter().filter(|p| truth.contains(p)).count();
        total += truth.len();
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Per-epoch RNG: deterministic given the config seed and epoch index,
/// so a resumed run and an epoch retry draw the same samples an
/// uninterrupted run would have.
fn epoch_rng(seed: u64, epoch: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Builds the batch loss on `tape` over the *detached* embedding proxies
/// (one [`Param`] per slot, holding that trajectory's embedding value).
/// The graph contains no model parameters — `hash_of`, the approximate
/// similarity, and the hinge terms are all parameter-free functions of
/// the embeddings — so `loss.backward()` deposits exactly the upstream
/// gradient of each embedding into its proxy's `grad`.
fn batch_loss(
    model: &Traj2Hash,
    tape: &Tape,
    cfg: &TrainConfig,
    plan: &BatchPlan<'_>,
    proxies: &[Param],
) -> Var {
    let evars: Vec<Var> = proxies.iter().map(|p| tape.param(p)).collect();
    let mut loss: Option<Var> = None;
    let mut add = |term: Var| {
        loss = Some(match loss.take() {
            None => term,
            Some(a) => a.add(&term),
        });
    };
    for term in &plan.terms {
        match term {
            LossTerm::Anchor(t) => {
                let e_i = &evars[t.anchor];
                for &(j, s, w) in &t.companions {
                    let g = approx_similarity(e_i, &evars[j]);
                    add(wmse_term(tape, &g, s, w));
                }
                // ranking hash objective on the same samples (Eq. 18/19)
                let z_i = model.hash_of(e_i);
                for &(p, n) in &t.pairs {
                    let z_p = model.hash_of(&evars[p]);
                    let z_n = model.hash_of(&evars[n]);
                    add(ranking_hash_loss(&z_i, &z_p, &z_n, cfg.alpha).scale(cfg.gamma));
                }
            }
            LossTerm::Triplet { a, p, n } => {
                let z_a = model.hash_of(&evars[*a]);
                let z_p = model.hash_of(&evars[*p]);
                let z_n = model.hash_of(&evars[*n]);
                add(ranking_hash_loss(&z_a, &z_p, &z_n, cfg.alpha));
            }
        }
    }
    loss.expect("batch plan with no loss terms").scale(plan.scale)
}

/// Runs one mini-batch: forward each distinct trajectory once on its own
/// tape, build the (parameter-free) loss graph over the embedding values
/// on the calling thread, hand each embedding its upstream gradient via
/// [`Var::backward_with`], reduce the per-trajectory parameter gradients
/// **in slot order**, clip, and take one optimizer step. Returns the
/// batch loss.
///
/// With `threads > 1`, slots are distributed in contiguous chunks over a
/// `std::thread::scope` pool. Each worker rebuilds a read-only replica
/// from the model spec + value snapshot (the `Rc`-based tape never
/// crosses a thread), keeps its tapes alive across the values → upstream-
/// gradients barrier via channels, and returns per-slot gradients. The
/// single-threaded path runs the identical forward/loss/harvest/reduce
/// arithmetic, which is what makes `num_threads = 1` and `num_threads
/// = N` agree bit-for-bit.
///
/// With `verify` set (the trainer's debug-build hook), the compiled
/// plan and the recorded loss tape are statically verified *before*
/// `backward` runs; an inconsistent graph surfaces as
/// [`TrainError::InvalidGraph`] instead of a panic mid-epoch or a
/// silently wrong gradient.
fn run_batch(
    model: &Traj2Hash,
    cfg: &TrainConfig,
    opt: &mut Adam,
    plan: &BatchPlan<'_>,
    threads: usize,
    verify: bool,
) -> Result<f32, TrainError> {
    let n = plan.trajs.len();
    assert!(n > 0, "run_batch needs at least one trajectory");
    // Clock reads only when a recorder is installed: the disabled path
    // through this hot loop is a single relaxed atomic load.
    let obs_t0 = traj_obs::enabled().then(std::time::Instant::now);
    if verify {
        let issues = plan.verify();
        if !issues.is_empty() {
            let text: Vec<String> = issues.iter().map(|i| i.to_string()).collect();
            return Err(TrainError::InvalidGraph(format!(
                "batch plan failed verification: {}",
                text.join("; ")
            )));
        }
    }
    let threads = threads.clamp(1, n);
    let mut per_slot: Vec<Option<Vec<Tensor>>> = (0..n).map(|_| None).collect();
    let item: f32;

    if threads == 1 {
        let forwards: Vec<(Tape, Var)> = plan
            .trajs
            .iter()
            .map(|t| {
                let tape = Tape::new();
                let v = model.embed_var(&tape, t);
                (tape, v)
            })
            .collect();
        let proxies: Vec<Param> =
            forwards.iter().map(|(_, v)| Param::new(v.value())).collect();
        let loss_tape = Tape::new();
        let loss = batch_loss(model, &loss_tape, cfg, plan, &proxies);
        if verify {
            let report = verify_tape(&loss_tape, &loss);
            if !report.is_ok() {
                return Err(TrainError::InvalidGraph(format!(
                    "loss tape failed verification: {report}"
                )));
            }
        }
        item = loss.item();
        loss.backward();
        for (k, (_tape, v)) in forwards.iter().enumerate() {
            model.params.zero_grad();
            v.backward_with(proxies[k].borrow().grad.clone());
            per_slot[k] = Some(model.params.take_grads());
        }
    } else {
        let spec = model.spec();
        let values = model.params.clone_values();
        let chunk = n.div_ceil(threads);
        let (val_tx, val_rx) = mpsc::channel::<(usize, Tensor)>();
        let (res_tx, res_rx) = mpsc::channel::<(usize, Vec<Tensor>)>();
        item = std::thread::scope(|scope| -> Result<f32, TrainError> {
            let mut grad_txs: Vec<mpsc::Sender<Vec<Tensor>>> = Vec::new();
            for start in (0..n).step_by(chunk) {
                let end = (start + chunk).min(n);
                let my_trajs = &plan.trajs[start..end];
                let val_tx = val_tx.clone();
                let res_tx = res_tx.clone();
                let (grad_tx, grad_rx) = mpsc::channel::<Vec<Tensor>>();
                grad_txs.push(grad_tx);
                let spec = &spec;
                let values = &values;
                scope.spawn(move || {
                    let replica = Traj2Hash::from_spec(spec, values);
                    let forwards: Vec<(Tape, Var)> = my_trajs
                        .iter()
                        .map(|t| {
                            let tape = Tape::new();
                            let v = replica.embed_var(&tape, t);
                            (tape, v)
                        })
                        .collect();
                    for (off, (_, v)) in forwards.iter().enumerate() {
                        val_tx
                            .send((start + off, v.value()))
                            .expect("embedding value channel closed");
                    }
                    drop(val_tx);
                    // Barrier: the upstream gradients only exist once the
                    // main thread has run the loss graph.
                    let Ok(upstream) = grad_rx.recv() else { return };
                    for (off, ((_tape, v), g)) in forwards.iter().zip(upstream).enumerate() {
                        replica.params.zero_grad();
                        v.backward_with(g);
                        res_tx
                            .send((start + off, replica.params.take_grads()))
                            .expect("gradient result channel closed");
                    }
                });
            }
            drop(val_tx);
            drop(res_tx);

            let mut vals: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (k, v) = val_rx.recv().expect("embedding worker died");
                vals[k] = Some(v);
            }
            let proxies: Vec<Param> = vals
                .into_iter()
                .map(|v| Param::new(v.expect("worker delivered no embedding for a slot")))
                .collect();
            let loss_tape = Tape::new();
            let loss = batch_loss(model, &loss_tape, cfg, plan, &proxies);
            if verify {
                let report = verify_tape(&loss_tape, &loss);
                if !report.is_ok() {
                    // Early return drops `grad_txs`; workers observe the
                    // closed channel and exit cleanly before backward.
                    return Err(TrainError::InvalidGraph(format!(
                        "loss tape failed verification: {report}"
                    )));
                }
            }
            let item = loss.item();
            loss.backward();
            for (wi, start) in (0..n).step_by(chunk).enumerate() {
                let end = (start + chunk).min(n);
                let upstream: Vec<Tensor> =
                    (start..end).map(|k| proxies[k].borrow().grad.clone()).collect();
                grad_txs[wi].send(upstream).expect("gradient channel closed");
            }
            for _ in 0..n {
                let (k, g) = res_rx.recv().expect("gradient worker died");
                per_slot[k] = Some(g);
            }
            Ok(item)
        })?;
    }

    // Fixed-order reduction: whatever the thread layout, slot 0 seeds
    // the accumulator and slots 1..n add in index order.
    let mut acc: Option<Vec<Tensor>> = None;
    for g in per_slot {
        let g = g.expect("worker delivered no gradient for a slot");
        match &mut acc {
            None => acc = Some(g),
            Some(a) => {
                for (t, s) in a.iter_mut().zip(&g) {
                    t.add_assign(s);
                }
            }
        }
    }
    model.params.load_grads(acc.expect("batch reduced to no gradients"));
    clip_grad_norm(&model.params, cfg.clip_norm);
    opt.step(&model.params);
    if let Some(t0) = obs_t0 {
        traj_obs::observe_secs("train.batch_secs", t0.elapsed().as_secs_f64());
        traj_obs::observe_value("train.batch_slots", n as f64);
        traj_obs::counter("train.batches", 1);
    }
    Ok(item)
}

/// Runs one epoch of the combined objective; returns the mean batch
/// loss and advances the triplet cursor. All companion/shuffle sampling
/// happens here on the calling thread, in the same order regardless of
/// `threads`, so the RNG stream is thread-count independent.
///
/// In debug builds the first batch of the epoch goes through the static
/// verifiers (plan + recorded loss tape) before any backward pass — a
/// regression in batch compilation or tape recording fails fast with a
/// typed [`TrainError::InvalidGraph`] rather than a mid-epoch panic.
/// Release builds skip the check entirely.
fn run_epoch(
    model: &Traj2Hash,
    data: &TrainData,
    cfg: &TrainConfig,
    opt: &mut Adam,
    rng: &mut StdRng,
    triplet_cursor: &mut usize,
    threads: usize,
) -> Result<EpochStats, TrainError> {
    let n_seeds = data.seeds.len();
    let mut anchor_loss = 0.0f32;
    let mut anchor_batches = 0usize;
    let mut triplet_loss = 0.0f32;
    let mut triplet_batches = 0usize;
    let mut batches = 0usize;
    let debug_verify = cfg!(debug_assertions);

    // ---- WMSE + ranking objective over seed anchors (L_s + g L_r) --
    let mut anchors: Vec<usize> = (0..n_seeds).collect();
    for i in (1..anchors.len()).rev() {
        let j = rng.random_range(0..=i);
        anchors.swap(i, j);
    }
    for batch in anchors.chunks(cfg.batch_size) {
        let Some(plan) = wmse_plan(data, cfg, batch, rng) else { continue };
        anchor_loss += run_batch(model, cfg, opt, &plan, threads, debug_verify && batches == 0)?;
        anchor_batches += 1;
        batches += 1;
    }

    // ---- generated-triplet objective (L_t), Eq. 20 ------------------
    if cfg.use_triplets && !data.triplets.is_empty() {
        let mut used = 0usize;
        while used < cfg.triplets_per_epoch {
            let take = cfg.triplet_batch.min(cfg.triplets_per_epoch - used);
            let batch_triplets: Vec<Triplet> = (0..take)
                .map(|_| {
                    let t = data.triplets[*triplet_cursor % data.triplets.len()];
                    *triplet_cursor += 1;
                    t
                })
                .collect();
            used += take;
            let plan = triplet_plan(data, cfg, &batch_triplets);
            triplet_loss += run_batch(model, cfg, opt, &plan, threads, debug_verify && batches == 0)?;
            triplet_batches += 1;
            batches += 1;
        }
    }

    Ok(EpochStats {
        mean_loss: if batches > 0 { (anchor_loss + triplet_loss) / batches as f32 } else { 0.0 },
        anchor_loss: if anchor_batches > 0 { anchor_loss / anchor_batches as f32 } else { 0.0 },
        triplet_loss: if triplet_batches > 0 { triplet_loss / triplet_batches as f32 } else { 0.0 },
        batches,
    })
}

/// What [`run_epoch`] measured: the combined mean the guard inspects
/// plus the per-objective decomposition the epoch span exports.
struct EpochStats {
    /// Mean combined loss over all batches (the number the divergence
    /// guard and `TrainReport::epoch_losses` see).
    mean_loss: f32,
    /// Mean over the seed-anchor batches (`L_s + gamma L_r`).
    anchor_loss: f32,
    /// Mean over the generated-triplet batches (`gamma L_t`).
    triplet_loss: f32,
    /// Optimizer batches run this epoch.
    batches: usize,
}

/// The last state known to be healthy; the divergence guard restores
/// this when an epoch blows up.
struct GoodState {
    /// `TNS1` blob: parameter values + Adam moments.
    params_state: Vec<u8>,
    /// Adam step counter at the snapshot.
    adam_steps: u64,
    /// Triplet cursor at the snapshot.
    triplet_cursor: usize,
    /// Number of completed epochs the snapshot covers.
    epoch: usize,
    /// Loss of the last completed epoch, the spike reference.
    loss: Option<f32>,
}

/// Trains the model in place and returns a report.
///
/// Equivalent to [`train_with_hooks`] with no hooks installed.
pub fn train(
    model: &mut Traj2Hash,
    data: &TrainData,
    cfg: &TrainConfig,
) -> Result<TrainReport, TrainError> {
    train_with_hooks(model, data, cfg, TrainHooks::default())
}

/// Trains the model in place with instrumentation hooks.
///
/// Fault tolerance, in order of engagement:
/// 1. `cfg.validate()` rejects bad hyper-parameters up front.
/// 2. With `cfg.resume` and an existing checkpoint at
///    `cfg.checkpoint_path`, training restores parameters, optimizer
///    moments, scheduler position, and history, then continues.
/// 3. After every epoch, the divergence guard inspects the mean loss
///    (as transformed by the hook, if any): a non-finite value or a
///    spike beyond `cfg.divergence_factor` times the last good epoch
///    loss rolls parameters and optimizer back to the last good
///    snapshot, multiplies the learning rate by `cfg.lr_backoff`, and
///    retries the epoch — at most `cfg.max_rollbacks` times before
///    giving up with [`TrainError::Diverged`]. Every rollback is
///    recorded in `TrainReport::recoveries`.
/// 4. Every `cfg.checkpoint_every` epochs (and once at the end) the
///    full state is written atomically to `cfg.checkpoint_path`.
pub fn train_with_hooks(
    model: &mut Traj2Hash,
    data: &TrainData,
    cfg: &TrainConfig,
    mut hooks: TrainHooks<'_>,
) -> Result<TrainReport, TrainError> {
    cfg.validate()?;
    let start = std::time::Instant::now();
    let threads = cfg.resolved_threads();
    let n_seeds = data.seeds.len();
    if n_seeds < 2 {
        return Err(TrainError::TooFewSeeds { got: n_seeds });
    }

    let mut opt = Adam::new(cfg.lr);
    let mut epoch_losses: Vec<f32> = Vec::with_capacity(cfg.epochs);
    let mut val_hr10: Vec<f64> = Vec::new();
    let mut best: (usize, Option<f64>, Vec<u8>) = (0, None, model.save_bytes());
    let mut recoveries: Vec<RecoveryEvent> = Vec::new();
    let mut triplet_cursor = 0usize;
    let mut start_epoch = 0usize;
    let mut resumed_from_epoch = None;

    // ---- resume from checkpoint ------------------------------------
    if cfg.resume {
        if let Some(path) = &cfg.checkpoint_path {
            if path.exists() {
                let ckpt = Checkpoint::read_from_file(path)?;
                model
                    .params
                    .load_state_bytes(&ckpt.params_state)
                    .map_err(TrainError::IncompatibleCheckpoint)?;
                opt.lr = ckpt.lr;
                opt.set_steps(ckpt.adam_steps);
                triplet_cursor = ckpt.triplet_cursor;
                start_epoch = ckpt.epoch;
                best = (ckpt.best_epoch, ckpt.best_val, ckpt.best_params);
                epoch_losses = ckpt.epoch_losses;
                val_hr10 = ckpt.val_hr10;
                recoveries = ckpt.recoveries;
                resumed_from_epoch = Some(start_epoch);
            }
        }
    }

    let mut good = GoodState {
        params_state: model.params.save_state_bytes(),
        adam_steps: opt.steps(),
        triplet_cursor,
        epoch: start_epoch,
        loss: epoch_losses.last().copied().filter(|l| l.is_finite()),
    };

    let save_checkpoint = |path: &std::path::Path,
                           good: &GoodState,
                           opt: &Adam,
                           best: &(usize, Option<f64>, Vec<u8>),
                           epoch_losses: &[f32],
                           val_hr10: &[f64],
                           recoveries: &[RecoveryEvent]|
     -> Result<f64, TrainError> {
        let t0 = std::time::Instant::now();
        Checkpoint {
            epoch: good.epoch,
            adam_steps: good.adam_steps,
            triplet_cursor: good.triplet_cursor,
            lr: opt.lr,
            best_epoch: best.0,
            best_val: best.1,
            params_state: good.params_state.clone(),
            best_params: best.2.clone(),
            epoch_losses: epoch_losses.to_vec(),
            val_hr10: val_hr10.to_vec(),
            recoveries: recoveries.to_vec(),
        }
        .write_to_file(path)?;
        Ok(t0.elapsed().as_secs_f64())
    };

    let mut timings = TrainTimings::default();
    let _train_span = traj_obs::span("train")
        .field("epochs", cfg.epochs)
        .field("threads", threads)
        .field("seeds", n_seeds);
    let mut epoch = start_epoch;
    let mut retries_this_epoch = 0usize;
    while epoch < cfg.epochs {
        // HashNet continuation: increase beta each epoch so tanh(beta x)
        // approaches sign(x).
        model.beta = cfg.beta0 + cfg.beta_step * epoch as f32;
        let mut rng = epoch_rng(cfg.seed, epoch);
        let mut cursor = good.triplet_cursor;
        let mut ep_span =
            traj_obs::span("epoch").field("epoch", epoch).field("beta", model.beta);
        let ep_start = std::time::Instant::now();
        let stats = run_epoch(model, data, cfg, &mut opt, &mut rng, &mut cursor, threads)?;
        let ep_secs = ep_start.elapsed().as_secs_f64();
        let raw_loss = stats.mean_loss;
        let loss = match hooks.on_epoch_loss.as_mut() {
            Some(h) => h(epoch, raw_loss),
            None => raw_loss,
        };
        ep_span.add_field("loss", loss);
        ep_span.add_field("loss_anchors", stats.anchor_loss);
        ep_span.add_field("loss_triplets", stats.triplet_loss);
        ep_span.add_field("lr", opt.lr);

        // ---- divergence guard ---------------------------------------
        let spiked = match good.loss {
            Some(g) => loss.is_finite() && loss > cfg.divergence_factor * g.abs().max(1e-6),
            None => false,
        };
        if !loss.is_finite() || spiked {
            retries_this_epoch += 1;
            if retries_this_epoch > cfg.max_rollbacks {
                return Err(TrainError::Diverged { epoch, loss, retries: cfg.max_rollbacks });
            }
            let lr_after = opt.lr * cfg.lr_backoff;
            let kind = if loss.is_finite() {
                RecoveryKind::LossSpike
            } else {
                RecoveryKind::NonFiniteLoss
            };
            recoveries.push(RecoveryEvent { epoch, kind, loss, restored_epoch: good.epoch, lr_after });
            traj_obs::counter("train.rollbacks", 1);
            traj_obs::event(
                "train.rollback",
                &[
                    ("epoch", epoch.into()),
                    ("kind", kind.to_string().into()),
                    ("loss", loss.into()),
                    ("restored_epoch", good.epoch.into()),
                    ("lr_after", lr_after.into()),
                ],
            );
            traj_obs::event(
                "train.lr_backoff",
                &[("epoch", epoch.into()), ("lr_before", opt.lr.into()), ("lr_after", lr_after.into())],
            );
            ep_span.add_field("rolled_back", true);
            timings.rolled_back_seconds += ep_secs;
            model
                .params
                .load_state_bytes(&good.params_state)
                .map_err(TrainError::IncompatibleCheckpoint)?;
            opt.set_steps(good.adam_steps);
            opt.lr = lr_after;
            // Retry the same epoch with the reduced learning rate.
            continue;
        }
        retries_this_epoch = 0;

        epoch_losses.push(loss);
        timings.epoch_seconds.push(ep_secs);
        timings.batches += stats.batches;

        // ---- model selection on validation HR@10 --------------------
        if cfg.validate {
            let val_start = std::time::Instant::now();
            let hr = validation_hr10_with_threads(model, data, threads);
            let val_secs = val_start.elapsed().as_secs_f64();
            timings.validation_seconds += val_secs;
            traj_obs::gauge("train.val_hr10", hr);
            traj_obs::observe_secs("train.validation_secs", val_secs);
            ep_span.add_field("val_hr10", hr);
            val_hr10.push(hr);
            if best.1.is_none_or(|b| hr > b) {
                best = (epoch, Some(hr), model.save_bytes());
            }
        }

        triplet_cursor = cursor;
        good = GoodState {
            params_state: model.params.save_state_bytes(),
            adam_steps: opt.steps(),
            triplet_cursor,
            epoch: epoch + 1,
            loss: Some(loss),
        };

        // ---- periodic checkpoint ------------------------------------
        if let Some(path) = &cfg.checkpoint_path {
            if cfg.checkpoint_every > 0 && (epoch + 1).is_multiple_of(cfg.checkpoint_every) {
                timings.checkpoint_seconds +=
                    save_checkpoint(path, &good, &opt, &best, &epoch_losses, &val_hr10, &recoveries)?;
            }
        }

        epoch += 1;
    }

    // ---- final checkpoint -------------------------------------------
    if let Some(path) = &cfg.checkpoint_path {
        timings.checkpoint_seconds +=
            save_checkpoint(path, &good, &opt, &best, &epoch_losses, &val_hr10, &recoveries)?;
    }

    // "Restore best" is explicit: only when validation actually
    // produced a best score (no `f64::MIN` sentinel).
    if cfg.validate && best.1.is_some() {
        model
            .load_bytes(&best.2)
            .map_err(TrainError::IncompatibleCheckpoint)?;
    }

    Ok(TrainReport {
        epoch_losses,
        val_hr10,
        best_epoch: best.0,
        best_val: best.1,
        triplet_count: data.triplets.len(),
        seconds: start.elapsed().as_secs_f64(),
        recoveries,
        resumed_from_epoch,
        final_lr: opt.lr,
        threads_used: threads,
        timings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, TrainConfig};
    use crate::model::ModelContext;
    use traj_data::{CityParams, SplitSizes};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(
            CityParams::test_city(),
            SplitSizes { seeds: 16, validation: 24, corpus: 120, query: 5, database: 40 },
            21,
        )
    }

    #[test]
    fn training_reduces_loss_and_improves_hr() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig {
            epochs: 4,
            validate: true,
            triplets_per_epoch: 32,
            triplet_batch: 16,
            ..TrainConfig::default()
        };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        let hr_before = validation_hr10(&model, &data);
        let report = train(&mut model, &data, &tcfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        let hr_after = validation_hr10(&model, &data);
        assert!(
            hr_after >= hr_before,
            "training should not hurt validation HR@10 ({hr_before} -> {hr_after})"
        );
        assert!(report.recoveries.is_empty(), "healthy run must not roll back");
        assert_eq!(report.best_val, report.val_hr10.iter().copied().reduce(f64::max));
    }

    #[test]
    fn training_is_bit_identical_across_thread_counts() {
        // The tentpole guarantee: the shard partition and the gradient
        // reduction order depend only on the batch content, so the same
        // seed must yield the same losses and the same final parameters
        // EXACTLY, whether the shards ran on 1 thread or 4.
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let base = TrainConfig {
            epochs: 2,
            validate: true,
            triplets_per_epoch: 32,
            triplet_batch: 16,
            ..TrainConfig::default()
        };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &base).unwrap();
        let run = |threads: usize| {
            let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
            let cfg = TrainConfig { num_threads: threads, ..base.clone() };
            let report = train(&mut model, &data, &cfg).unwrap();
            (report, model.params.clone_values())
        };
        let (r1, p1) = run(1);
        let (r4, p4) = run(4);
        assert_eq!(r1.threads_used, 1);
        assert_eq!(r4.threads_used, 4);
        assert_eq!(r1.epoch_losses, r4.epoch_losses, "epoch losses must match exactly");
        assert_eq!(r1.val_hr10, r4.val_hr10, "validation scores must match exactly");
        assert_eq!(p1.len(), p4.len());
        for (a, b) in p1.iter().zip(&p4) {
            assert_eq!(a.data(), b.data(), "final parameters must be bit-identical");
        }
    }

    #[test]
    fn parallel_corpus_encoding_matches_serial() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let model = Traj2Hash::new(mcfg, &ctx, 2);
        let serial = model.embed_all(&dataset.corpus);
        let parallel = model.embed_all_with_threads(&dataset.corpus, 4);
        assert_eq!(serial, parallel, "threaded encoding must be bit-identical");
    }

    #[test]
    fn train_data_prepare_produces_consistent_supervision() {
        let dataset = tiny_dataset();
        let tcfg = TrainConfig::tiny();
        let data = TrainData::prepare(&dataset, Measure::Dtw, &tcfg).unwrap();
        let n = dataset.seeds.len();
        assert_eq!(data.sim.n(), n);
        // similarity diagonal is implicit 1, distances diagonal is unstored
        for i in 0..n {
            assert!((data.sim.get(i, i) - 1.0).abs() < 1e-9);
            assert_eq!(data.dist.get(i, i), None);
        }
        // supervision_k >= seeds - 1 on the tiny corpus: every
        // off-diagonal pair is stored exactly
        assert!(tcfg.supervision_k >= n - 1);
        assert_eq!(data.dist.nnz(), n * (n - 1));
        assert_eq!(data.val_truth.len(), data.val_queries.len());
        for t in &data.val_truth {
            assert_eq!(t.len(), 10);
        }
    }

    #[test]
    fn sparse_supervision_is_dense_equivalent_on_tiny_corpora() {
        // With supervision_k >= seeds - 1 nothing prunes, so theta, every
        // similarity, and the validation ground truth must be exactly
        // what the dense O(n^2) pipeline produced before the refactor.
        use traj_dist::{auto_theta, distance_matrix, similarity_matrix};
        let dataset = tiny_dataset();
        let tcfg = TrainConfig::tiny();
        let data = TrainData::prepare(&dataset, Measure::Dtw, &tcfg).unwrap();

        let dense_dist = distance_matrix(&dataset.seeds, Measure::Dtw);
        let theta = auto_theta(&dense_dist, tcfg.theta_target);
        let dense_sim = similarity_matrix(&dense_dist, theta);
        assert_eq!(data.sim.theta(), theta, "theta must match the dense path exactly");
        for i in 0..data.sim.n() {
            for j in 0..data.sim.n() {
                assert_eq!(
                    data.sim.get(i, j),
                    dense_sim.get(i, j),
                    "similarity ({i},{j}) diverged from the dense supervision"
                );
                if i != j {
                    assert_eq!(data.dist.get(i, j), Some(dense_dist.get(i, j)));
                }
            }
        }

        let val_dense = distance_matrix(&dataset.validation, Measure::Dtw);
        for (qi, &q) in data.val_queries.iter().enumerate() {
            assert_eq!(data.val_truth[qi], val_dense.top_k_row(q, 10));
        }
    }

    #[test]
    fn triplet_ablation_trains_without_triplets() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny().without_rev_aug();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig { epochs: 2, validate: false, ..TrainConfig::tiny() }
            .without_triplets();
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        let report = train(&mut model, &data, &tcfg).unwrap();
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn too_few_seeds_is_a_typed_error_not_an_abort() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig::tiny();
        let mut data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        data.seeds.truncate(1);
        match train(&mut model, &data, &tcfg) {
            Err(TrainError::TooFewSeeds { got: 1 }) => {}
            other => panic!("expected TooFewSeeds, got {other:?}"),
        }
    }

    #[test]
    fn invalid_config_is_rejected_before_training() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let good = TrainConfig::tiny();
        let data = TrainData::prepare(&dataset, Measure::Frechet, &good).unwrap();
        let bad = TrainConfig { lr: 0.0, ..good };
        assert!(matches!(
            train(&mut model, &data, &bad),
            Err(TrainError::InvalidConfig(_))
        ));
    }

    #[test]
    fn nan_loss_rolls_back_and_training_completes() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig { epochs: 3, ..TrainConfig::tiny() };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        // Inject a NaN the first time epoch 1 reports its loss.
        let mut injected = false;
        let hooks = TrainHooks::with_loss_hook(move |epoch, loss| {
            if epoch == 1 && !injected {
                injected = true;
                f32::NAN
            } else {
                loss
            }
        });
        let report = train_with_hooks(&mut model, &data, &tcfg, hooks).unwrap();
        assert_eq!(report.epoch_losses.len(), 3, "all epochs completed");
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert_eq!(report.recoveries.len(), 1);
        let ev = &report.recoveries[0];
        assert_eq!(ev.epoch, 1);
        assert_eq!(ev.kind, RecoveryKind::NonFiniteLoss);
        assert!(ev.loss.is_nan());
        assert_eq!(ev.restored_epoch, 1, "rolled back to the end of epoch 0");
        assert!((ev.lr_after - tcfg.lr * tcfg.lr_backoff).abs() < 1e-12);
        assert!((report.final_lr - tcfg.lr * tcfg.lr_backoff).abs() < 1e-12);
    }

    #[test]
    fn persistent_divergence_exhausts_retries_with_typed_error() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig { epochs: 3, max_rollbacks: 2, ..TrainConfig::tiny() };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        let hooks = TrainHooks::with_loss_hook(|_, _| f32::INFINITY);
        match train_with_hooks(&mut model, &data, &tcfg, hooks) {
            Err(TrainError::Diverged { epoch: 0, retries: 2, .. }) => {}
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn loss_spike_triggers_rollback_too() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig { epochs: 3, divergence_factor: 2.0, ..TrainConfig::tiny() };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        let mut injected = false;
        let hooks = TrainHooks::with_loss_hook(move |epoch, loss| {
            if epoch == 2 && !injected {
                injected = true;
                loss * 100.0
            } else {
                loss
            }
        });
        let report = train_with_hooks(&mut model, &data, &tcfg, hooks).unwrap();
        assert_eq!(report.recoveries.len(), 1);
        assert_eq!(report.recoveries[0].kind, RecoveryKind::LossSpike);
        assert_eq!(report.epoch_losses.len(), 3);
    }

    #[test]
    fn checkpoint_resume_continues_from_saved_epoch() {
        let dir = std::env::temp_dir().join("traj2hash_resume_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ckpt");
        let _ = std::fs::remove_file(&path);

        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let tcfg = TrainConfig {
            epochs: 4,
            validate: true,
            checkpoint_every: 1,
            checkpoint_path: Some(path.clone()),
            ..TrainConfig::tiny()
        };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();

        // Full uninterrupted run for reference.
        let mut reference = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
        let ref_cfg = TrainConfig { checkpoint_path: None, checkpoint_every: 0, ..tcfg.clone() };
        let ref_report = train(&mut reference, &data, &ref_cfg).unwrap();

        // Interrupted run: stop after 2 epochs (checkpoint written),
        // then resume in a fresh model.
        let mut first = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
        let part_cfg = TrainConfig { epochs: 2, ..tcfg.clone() };
        train(&mut first, &data, &part_cfg).unwrap();

        let mut resumed = Traj2Hash::new(ModelConfig::tiny(), &ctx, 999);
        let resume_cfg = TrainConfig { resume: true, ..tcfg.clone() };
        let report = train(&mut resumed, &data, &resume_cfg).unwrap();
        assert_eq!(report.resumed_from_epoch, Some(2));
        assert_eq!(report.epoch_losses.len(), 4, "history spans both runs");
        // The resumed run must match the uninterrupted run exactly:
        // same per-epoch RNG, same parameters, same optimizer moments.
        for (a, b) in report.epoch_losses.iter().zip(&ref_report.epoch_losses) {
            assert!((a - b).abs() < 1e-5, "resumed losses diverge: {a} vs {b}");
        }

        let _ = std::fs::remove_file(&path);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_with_missing_checkpoint_starts_fresh() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig {
            epochs: 2,
            resume: true,
            checkpoint_path: Some(std::env::temp_dir().join("traj2hash_missing.ckpt.nope")),
            ..TrainConfig::tiny()
        };
        let _ = std::fs::remove_file(tcfg.checkpoint_path.as_ref().unwrap());
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
        let report = train(&mut model, &data, &tcfg).unwrap();
        assert_eq!(report.resumed_from_epoch, None);
        assert_eq!(report.epoch_losses.len(), 2);
        let _ = std::fs::remove_file(tcfg.checkpoint_path.as_ref().unwrap());
    }
}
