//! End-to-end training of Traj2Hash (Section IV-F): WMSE on the seed
//! distance matrix + ranking-based hashing objective + generated-triplet
//! objective, combined as `L = L_s + gamma * (L_r + L_t)` (Eq. 21),
//! optimized with Adam under the HashNet `tanh(beta x)` continuation.

use crate::config::TrainConfig;
use crate::loss::{
    approx_similarity, rank_pairs, rank_weights, ranking_hash_loss, sample_companions, wmse_term,
};
use crate::model::Traj2Hash;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;
use tinynn::{clip_grad_norm, Adam, Tape, Var};
use traj_data::{Dataset, Trajectory};
use traj_dist::{auto_theta, distance_matrix, similarity_matrix, DistanceMatrix, Measure};
use traj_grid::{generate_triplets, GridSpec, Triplet};

/// Supervision assembled once before training.
pub struct TrainData {
    /// Seed trajectories.
    pub seeds: Vec<Trajectory>,
    /// Similarity supervision `S` over the seeds (Eq. 17's targets).
    pub sim: DistanceMatrix,
    /// Exact distance matrix over the seeds (kept for diagnostics).
    pub dist: DistanceMatrix,
    /// Unlabelled corpus used by the fast triplet generation.
    pub corpus: Vec<Trajectory>,
    /// Generated `(anchor, positive, negative)` corpus triplets.
    pub triplets: Vec<Triplet>,
    /// Validation trajectories.
    pub validation: Vec<Trajectory>,
    /// Indices of validation trajectories used as queries.
    pub val_queries: Vec<usize>,
    /// Exact top-10 neighbours of each validation query within the
    /// validation set (ground truth for model selection).
    pub val_truth: Vec<Vec<usize>>,
}

impl TrainData {
    /// Computes all supervision: the parallel exact distance matrix over
    /// the seeds, its similarity transform, the coarse-grid triplets, and
    /// the validation ground truth.
    pub fn prepare(dataset: &Dataset, measure: Measure, cfg: &TrainConfig) -> TrainData {
        let dist = distance_matrix(&dataset.seeds, measure);
        let theta = auto_theta(&dist, cfg.theta_target);
        let sim = similarity_matrix(&dist, theta);

        let bbox = traj_data::BoundingBox::of_dataset(&dataset.corpus)
            .expect("empty corpus");
        let coarse = GridSpec::new(bbox, cfg.coarse_cell_m);
        let triplets = generate_triplets(&dataset.corpus, &coarse, 20_000, cfg.seed);

        let val_dist = distance_matrix(&dataset.validation, measure);
        let n_queries = dataset.validation.len().min(40);
        let val_queries: Vec<usize> = (0..n_queries).collect();
        let val_truth = val_queries.iter().map(|&q| val_dist.top_k_row(q, 10)).collect();

        TrainData {
            seeds: dataset.seeds.clone(),
            sim,
            dist,
            corpus: dataset.corpus.clone(),
            triplets,
            validation: dataset.validation.clone(),
            val_queries,
            val_truth,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean combined loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation HR@10 per epoch (empty when validation is disabled).
    pub val_hr10: Vec<f64>,
    /// Epoch whose parameters were kept.
    pub best_epoch: usize,
    /// Number of generated triplets available.
    pub triplet_count: usize,
    /// Total wall-clock seconds.
    pub seconds: f64,
}

/// Embeds the given seed indices once on a shared tape, so a trajectory
/// appearing in several loss terms of a batch is only encoded once.
fn embed_cached(
    model: &Traj2Hash,
    tape: &Tape,
    trajs: &[Trajectory],
    cache: &mut HashMap<usize, Var>,
    idx: usize,
) -> Var {
    cache
        .entry(idx)
        .or_insert_with(|| model.embed_var(tape, &trajs[idx]))
        .clone()
}

/// Validation HR@10 in Euclidean space over the prepared validation set.
pub fn validation_hr10(model: &Traj2Hash, data: &TrainData) -> f64 {
    let embeddings = model.embed_all(&data.validation);
    let mut hits = 0usize;
    let mut total = 0usize;
    for (qi, &q) in data.val_queries.iter().enumerate() {
        let qe = &embeddings[q];
        let mut order: Vec<usize> =
            (0..data.validation.len()).filter(|&j| j != q).collect();
        let d2 = |a: &[f32], b: &[f32]| -> f32 {
            a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
        };
        order.sort_by(|&a, &b| {
            d2(qe, &embeddings[a])
                .partial_cmp(&d2(qe, &embeddings[b]))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let predicted = &order[..10.min(order.len())];
        let truth = &data.val_truth[qi];
        hits += predicted.iter().filter(|p| truth.contains(p)).count();
        total += truth.len();
    }
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Trains the model in place and returns a report.
pub fn train(model: &mut Traj2Hash, data: &TrainData, cfg: &TrainConfig) -> TrainReport {
    let start = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut opt = Adam::new(cfg.lr);
    let n_seeds = data.seeds.len();
    assert!(n_seeds >= 2, "need at least two seed trajectories");

    let mut epoch_losses = Vec::with_capacity(cfg.epochs);
    let mut val_hr10 = Vec::new();
    let mut best = (0usize, f64::MIN, model.save_bytes());

    let mut triplet_cursor = 0usize;
    for epoch in 0..cfg.epochs {
        // HashNet continuation: increase beta each epoch so tanh(beta x)
        // approaches sign(x).
        model.beta = cfg.beta0 + cfg.beta_step * epoch as f32;
        let mut epoch_loss = 0.0f32;
        let mut batches = 0usize;

        // ---- WMSE + ranking objective over seed anchors (L_s + g L_r) --
        let mut anchors: Vec<usize> = (0..n_seeds).collect();
        for i in (1..anchors.len()).rev() {
            let j = rng.random_range(0..=i);
            anchors.swap(i, j);
        }
        for batch in anchors.chunks(cfg.batch_size) {
            let tape = Tape::new();
            let mut cache: HashMap<usize, Var> = HashMap::new();
            let mut loss: Option<Var> = None;
            let add = |term: Var, acc: &mut Option<Var>| {
                *acc = Some(match acc.take() {
                    None => term,
                    Some(a) => a.add(&term),
                });
            };
            for &i in batch {
                let companions =
                    sample_companions(i, data.sim.row(i), cfg.samples_per_anchor, &mut rng);
                if companions.is_empty() {
                    continue;
                }
                let weights = rank_weights(companions.len());
                let e_i = embed_cached(model, &tape, &data.seeds, &mut cache, i);
                for (rank, &j) in companions.iter().enumerate() {
                    let e_j = embed_cached(model, &tape, &data.seeds, &mut cache, j);
                    let g = approx_similarity(&e_i, &e_j);
                    let term = wmse_term(&tape, &g, data.sim.get(i, j), weights[rank]);
                    add(term, &mut loss);
                }
                // ranking hash objective on the same samples (Eq. 18/19)
                let z_i = model.hash_of(&e_i);
                for (p, n) in rank_pairs(&companions) {
                    let e_p = embed_cached(model, &tape, &data.seeds, &mut cache, p);
                    let e_n = embed_cached(model, &tape, &data.seeds, &mut cache, n);
                    let z_p = model.hash_of(&e_p);
                    let z_n = model.hash_of(&e_n);
                    let term =
                        ranking_hash_loss(&z_i, &z_p, &z_n, cfg.alpha).scale(cfg.gamma);
                    add(term, &mut loss);
                }
            }
            if let Some(loss) = loss {
                let loss = loss.scale(1.0 / batch.len() as f32);
                epoch_loss += loss.item();
                batches += 1;
                model.params.zero_grad();
                loss.backward();
                clip_grad_norm(&model.params, cfg.clip_norm);
                opt.step(&model.params);
            }
        }

        // ---- generated-triplet objective (L_t), Eq. 20 ------------------
        if cfg.use_triplets && !data.triplets.is_empty() {
            let mut used = 0usize;
            while used < cfg.triplets_per_epoch {
                let take = cfg.triplet_batch.min(cfg.triplets_per_epoch - used);
                let tape = Tape::new();
                let mut cache: HashMap<usize, Var> = HashMap::new();
                let mut loss: Option<Var> = None;
                for _ in 0..take {
                    let (a, p, n) = data.triplets[triplet_cursor % data.triplets.len()];
                    triplet_cursor += 1;
                    let z_a = model
                        .hash_of(&embed_cached(model, &tape, &data.corpus, &mut cache, a));
                    let z_p = model
                        .hash_of(&embed_cached(model, &tape, &data.corpus, &mut cache, p));
                    let z_n = model
                        .hash_of(&embed_cached(model, &tape, &data.corpus, &mut cache, n));
                    let term = ranking_hash_loss(&z_a, &z_p, &z_n, cfg.alpha);
                    loss = Some(match loss {
                        None => term,
                        Some(acc) => acc.add(&term),
                    });
                }
                used += take;
                if let Some(loss) = loss {
                    let loss = loss.scale(cfg.gamma / take as f32);
                    epoch_loss += loss.item();
                    batches += 1;
                    model.params.zero_grad();
                    loss.backward();
                    clip_grad_norm(&model.params, cfg.clip_norm);
                    opt.step(&model.params);
                }
            }
        }

        epoch_losses.push(if batches > 0 { epoch_loss / batches as f32 } else { 0.0 });

        // ---- model selection on validation HR@10 ------------------------
        if cfg.validate {
            let hr = validation_hr10(model, data);
            val_hr10.push(hr);
            if hr > best.1 {
                best = (epoch, hr, model.save_bytes());
            }
        }
    }

    if cfg.validate && best.1 > f64::MIN {
        model
            .load_bytes(&best.2)
            .expect("restoring best parameters cannot fail");
    }

    TrainReport {
        epoch_losses,
        val_hr10,
        best_epoch: best.0,
        triplet_count: data.triplets.len(),
        seconds: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ModelConfig, TrainConfig};
    use crate::model::ModelContext;
    use traj_data::{CityParams, SplitSizes};

    fn tiny_dataset() -> Dataset {
        Dataset::generate(
            CityParams::test_city(),
            SplitSizes { seeds: 16, validation: 24, corpus: 120, query: 5, database: 40 },
            21,
        )
    }

    #[test]
    fn training_reduces_loss_and_improves_hr() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig {
            epochs: 4,
            validate: true,
            triplets_per_epoch: 32,
            triplet_batch: 16,
            ..TrainConfig::default()
        };
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg);
        let hr_before = validation_hr10(&model, &data);
        let report = train(&mut model, &data, &tcfg);
        assert_eq!(report.epoch_losses.len(), 4);
        assert!(
            report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap(),
            "loss did not decrease: {:?}",
            report.epoch_losses
        );
        let hr_after = validation_hr10(&model, &data);
        assert!(
            hr_after >= hr_before,
            "training should not hurt validation HR@10 ({hr_before} -> {hr_after})"
        );
    }

    #[test]
    fn train_data_prepare_produces_consistent_supervision() {
        let dataset = tiny_dataset();
        let tcfg = TrainConfig::tiny();
        let data = TrainData::prepare(&dataset, Measure::Dtw, &tcfg);
        assert_eq!(data.sim.n(), dataset.seeds.len());
        // similarity diagonal is 1, distances diagonal is 0
        for i in 0..data.sim.n() {
            assert!((data.sim.get(i, i) - 1.0).abs() < 1e-9);
            assert_eq!(data.dist.get(i, i), 0.0);
        }
        assert_eq!(data.val_truth.len(), data.val_queries.len());
        for t in &data.val_truth {
            assert_eq!(t.len(), 10);
        }
    }

    #[test]
    fn triplet_ablation_trains_without_triplets() {
        let dataset = tiny_dataset();
        let mcfg = ModelConfig::tiny().without_rev_aug();
        let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
        let mut model = Traj2Hash::new(mcfg, &ctx, 2);
        let tcfg = TrainConfig { epochs: 2, validate: false, ..TrainConfig::tiny() }
            .without_triplets();
        let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg);
        let report = train(&mut model, &data, &tcfg);
        assert_eq!(report.epoch_losses.len(), 2);
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
    }
}
