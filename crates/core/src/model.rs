//! The Traj2Hash model: two-channel encoder + hash layer (Section IV).

use crate::config::ModelConfig;
use crate::encoder::{GpsChannelEncoder, GridChannelEncoder, GridInputCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use tinynn::{Mlp, Param, ParamSet, Tape, Tensor, Var};
use traj_data::{NormStats, Trajectory};
use traj_grid::{DecomposedGridEmbedding, GridEmbedding, GridSpec, NceConfig};

/// Everything the model needs to know about the dataset before training:
/// normalization statistics, the fine grid, and the pre-trained frozen
/// grid embeddings.
pub struct ModelContext {
    /// Gaussian normalization statistics fitted on training-visible data.
    pub norm: NormStats,
    /// Fine grid (50 m cells by default).
    pub fine_spec: GridSpec,
    /// Pre-trained decomposed grid embedding.
    pub grid_emb: DecomposedGridEmbedding,
    /// Wall-clock seconds spent pre-training the grid embedding.
    pub pretrain_secs: f64,
}

impl ModelContext {
    /// Fits normalization statistics, builds the fine grid over the
    /// dataset's bounding box, and pre-trains the decomposed grid
    /// embedding with NCE.
    pub fn prepare(training_visible: &[Trajectory], cfg: &ModelConfig, seed: u64) -> Self {
        let norm = NormStats::fit(training_visible);
        let bbox = traj_data::BoundingBox::of_dataset(training_visible)
            .expect("cannot prepare a model context from an empty dataset");
        let fine_spec = GridSpec::new(bbox, cfg.fine_cell_m);
        let mut grid_emb = DecomposedGridEmbedding::init(&fine_spec, cfg.grid_dim, seed);
        let nce = NceConfig { dim: cfg.grid_dim, seed, ..NceConfig::default() };
        let pretrain_secs = grid_emb.pretrain(&fine_spec, &nce);
        ModelContext { norm, fine_spec, grid_emb, pretrain_secs }
    }
}

/// The Traj2Hash model.
///
/// `embed` produces the Euclidean representation `h_f^T` (Eq. 15) whose
/// pairwise Euclidean distances approximate the trajectory measure;
/// `hash` binarizes it with `sign` (Eq. 16) for Hamming-space search.
pub struct Traj2Hash {
    cfg: ModelConfig,
    /// All trainable parameters.
    pub params: ParamSet,
    gps: GpsChannelEncoder,
    grid: Option<GridChannelEncoder>,
    fuse: Mlp,
    projector: Param,
    /// Relaxation scale `beta` of `tanh(beta x)`; annealed during
    /// training, effectively infinite (hard sign) at inference.
    pub beta: f32,
}

/// A `Send + Sync` description of a model from which worker threads can
/// rebuild byte-identical replicas: configuration, normalization stats,
/// the frozen grid channel (spec + embedding + shared input cache), and
/// the current relaxation scale. Parameter *values* travel separately as
/// the snapshot from [`tinynn::ParamSet::clone_values`].
#[derive(Clone)]
pub struct ModelSpec {
    /// Model configuration.
    pub cfg: ModelConfig,
    /// Normalization statistics.
    pub norm: NormStats,
    /// Grid channel pieces when `cfg.use_grids`: spec, frozen embedding,
    /// and the input cache shared by every replica.
    pub grid: Option<(GridSpec, Arc<dyn GridEmbedding + Send + Sync>, GridInputCache)>,
    /// Current `tanh(beta x)` relaxation scale.
    pub beta: f32,
}

impl Traj2Hash {
    /// Builds a model with freshly initialized parameters, using the
    /// context's decomposed grid embedding for the grid channel.
    pub fn new(cfg: ModelConfig, ctx: &ModelContext, seed: u64) -> Self {
        let emb: Arc<dyn GridEmbedding + Send + Sync> = Arc::new(ctx.grid_emb.clone());
        Self::with_grid_embedding(cfg, ctx, emb, seed)
    }

    /// Builds a model with an explicit grid embedding provider — used by
    /// the Fig. 7 comparison to plug in Node2vec instead of the
    /// decomposed representation.
    pub fn with_grid_embedding(
        cfg: ModelConfig,
        ctx: &ModelContext,
        grid_embedding: Arc<dyn GridEmbedding + Send + Sync>,
        seed: u64,
    ) -> Self {
        let grid = cfg.use_grids.then(|| {
            (ctx.fine_spec.clone(), grid_embedding, GridInputCache::default())
        });
        Self::build(cfg, ctx.norm, grid, 1.0, seed)
    }

    /// Rebuilds a replica from a [`ModelSpec`] plus a parameter-value
    /// snapshot. The replica has the same architecture, the same values,
    /// and *shares* the frozen grid-input cache with the original, so
    /// worker threads never recompute a cached trajectory.
    pub fn from_spec(spec: &ModelSpec, values: &[Tensor]) -> Self {
        let model = Self::build(spec.cfg.clone(), spec.norm, spec.grid.clone(), spec.beta, 0);
        model.params.load_values(values);
        model
    }

    /// Rebuilds a model from a [`ModelSpec`] plus a serialized parameter
    /// blob as produced by [`Traj2Hash::save_bytes`] — the cold-start
    /// path of engine snapshots, where parameter values arrive from disk
    /// rather than from a live `ParamSet`.
    pub fn from_spec_bytes(spec: &ModelSpec, params_blob: &[u8]) -> Result<Self, String> {
        let model = Self::build(spec.cfg.clone(), spec.norm, spec.grid.clone(), spec.beta, 0);
        model.load_bytes(params_blob)?;
        Ok(model)
    }

    /// The `Send + Sync` replication spec for this model (see
    /// [`Traj2Hash::from_spec`]).
    pub fn spec(&self) -> ModelSpec {
        ModelSpec {
            cfg: self.cfg.clone(),
            norm: *self.gps.norm(),
            grid: self
                .grid
                .as_ref()
                .map(|g| (g.spec().clone(), g.embedding(), g.cache())),
            beta: self.beta,
        }
    }

    fn build(
        cfg: ModelConfig,
        norm: NormStats,
        grid_parts: Option<(GridSpec, Arc<dyn GridEmbedding + Send + Sync>, GridInputCache)>,
        beta: f32,
        seed: u64,
    ) -> Self {
        assert_eq!(
            cfg.use_grids,
            grid_parts.is_some(),
            "grid channel pieces must match cfg.use_grids"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = ParamSet::new();
        let gps = GpsChannelEncoder::new(&mut rng, &mut params, &cfg, norm);
        let grid = grid_parts.map(|(spec, emb, cache)| {
            GridChannelEncoder::new(&mut rng, &mut params, spec, emb, cache, cfg.dim)
        });
        let fuse_in = if cfg.use_grids { 2 * cfg.dim } else { cfg.dim };
        let fuse = Mlp::new(&mut rng, &mut params, &[fuse_in, cfg.dim]);
        // W_p in R^{d/2 x d} when reverse augmentation doubles the width
        // back to d (Eq. 15); a square projection otherwise, so the final
        // embedding width is d in both cases and ablations are comparable.
        let proj_out = if cfg.use_rev_aug { cfg.dim / 2 } else { cfg.dim };
        let projector = params.register(Param::new(tinynn::init::xavier_uniform(
            &mut rng,
            cfg.dim,
            proj_out,
        )));
        Traj2Hash { cfg, params, gps, grid, fuse, projector, beta }
    }

    /// Model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Width of the final embedding (= number of hash bits).
    pub fn embedding_dim(&self) -> usize {
        self.cfg.dim
    }

    /// Encodes one direction of a trajectory: two channels fused
    /// (Eq. 14) then projected.
    fn encode_direction(&self, tape: &Tape, t: &Trajectory) -> Var {
        let h_l = self.gps.forward(tape, t);
        let fused_in = match &self.grid {
            Some(grid_enc) => h_l.concat_cols(&grid_enc.forward(tape, t)),
            None => h_l,
        };
        let h = self.fuse.forward(tape, &fused_in);
        let w_p = tape.param(&self.projector);
        h.matmul(&w_p)
    }

    /// The Euclidean-space embedding `h_f^T` as a tape variable
    /// (training entry point). With reverse augmentation this is
    /// `[W_p h, W_p h_r]` (Eq. 15), which satisfies the reverse symmetric
    /// property by Lemma 3.
    pub fn embed_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        if self.cfg.use_rev_aug {
            let fwd = self.encode_direction(tape, t);
            let rev = self.encode_direction(tape, &t.reversed());
            fwd.concat_cols(&rev)
        } else {
            self.encode_direction(tape, t)
        }
    }

    /// The relaxed hash code `tanh(beta * h_f)` used during training
    /// (HashNet continuation, Section IV-F).
    pub fn hash_var(&self, tape: &Tape, t: &Trajectory) -> Var {
        self.embed_var(tape, t).scale(self.beta).tanh()
    }

    /// Relaxed hash code from an existing embedding variable.
    pub fn hash_of(&self, embedding: &Var) -> Var {
        embedding.scale(self.beta).tanh()
    }

    /// Inference: the Euclidean embedding as a plain tensor.
    pub fn embed(&self, t: &Trajectory) -> Tensor {
        let tape = Tape::new();
        self.embed_var(&tape, t).value()
    }

    /// Inference: the hard binary code as `+-1` signs (Eq. 16).
    pub fn hash_signs(&self, t: &Trajectory) -> Vec<i8> {
        self.embed(t)
            .data()
            .iter()
            .map(|&x| if x > 0.0 { 1 } else { -1 })
            .collect()
    }

    /// Batch embedding of many trajectories into row vectors.
    pub fn embed_all(&self, ts: &[Trajectory]) -> Vec<Vec<f32>> {
        ts.iter().map(|t| self.embed(t).data().to_vec()).collect()
    }

    /// Batch embedding across `threads` scoped worker threads. Each
    /// worker rebuilds a replica from [`Traj2Hash::spec`] and encodes a
    /// contiguous slice of the corpus; results keep input order and are
    /// bit-identical to [`Traj2Hash::embed_all`] (every embed is an
    /// independent forward pass). `threads <= 1` stays on this thread.
    pub fn embed_all_with_threads(&self, ts: &[Trajectory], threads: usize) -> Vec<Vec<f32>> {
        let threads = threads.max(1).min(ts.len().max(1));
        if threads == 1 {
            return self.embed_all(ts);
        }
        let spec = self.spec();
        let values = self.params.clone_values();
        let chunk = ts.len().div_ceil(threads);
        let mut out: Vec<Vec<Vec<f32>>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = ts
                .chunks(chunk)
                .map(|slice| {
                    let spec = &spec;
                    let values = &values;
                    scope.spawn(move || {
                        let replica = Traj2Hash::from_spec(spec, values);
                        replica.embed_all(slice)
                    })
                })
                .collect();
            for h in handles {
                out.push(h.join().expect("encoder worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// One direction of [`Traj2Hash::embed_batch`]: the sequence
    /// channels still run per trajectory (they are per-sequence by
    /// nature), but their fused inputs are stacked into one `B x
    /// fuse_in` matrix so the fuse layer and the projector each run as
    /// a single batched matmul over the whole request batch.
    fn encode_direction_batch(&self, ts: &[Trajectory], reverse: bool) -> Vec<Vec<f32>> {
        let tape = Tape::new();
        let fuse_in = if self.cfg.use_grids { 2 * self.cfg.dim } else { self.cfg.dim };
        let mut rows = Vec::with_capacity(ts.len() * fuse_in);
        for t in ts {
            let rev_holder;
            let t = if reverse {
                rev_holder = t.reversed();
                &rev_holder
            } else {
                t
            };
            let h_l = self.gps.forward(&tape, t);
            let fused_in = match &self.grid {
                Some(grid_enc) => h_l.concat_cols(&grid_enc.forward(&tape, t)),
                None => h_l,
            };
            rows.extend_from_slice(fused_in.value().data());
        }
        let batch = tape.constant(Tensor::from_vec(ts.len(), fuse_in, rows));
        let h = self.fuse.forward(&tape, &batch);
        let out = h.matmul(&tape.param(&self.projector)).value();
        out.data().chunks(out.cols()).map(|r| r.to_vec()).collect()
    }

    /// Batched inference: embeds every trajectory in `ts`, amortizing
    /// the dense layers — one fused matmul per layer over the whole
    /// batch instead of one per trajectory. Row `i` is bit-identical to
    /// `embed(&ts[i])` because the blocked matmul kernel computes each
    /// output row independently of the others in the batch.
    pub fn embed_batch(&self, ts: &[Trajectory]) -> Vec<Vec<f32>> {
        if ts.is_empty() {
            return Vec::new();
        }
        let fwd = self.encode_direction_batch(ts, false);
        if self.cfg.use_rev_aug {
            let rev = self.encode_direction_batch(ts, true);
            fwd.into_iter()
                .zip(rev)
                .map(|(mut f, r)| {
                    f.extend(r);
                    f
                })
                .collect()
        } else {
            fwd
        }
    }

    /// Batch hashing of many trajectories.
    pub fn hash_all(&self, ts: &[Trajectory]) -> Vec<Vec<i8>> {
        ts.iter().map(|t| self.hash_signs(t)).collect()
    }

    /// The model's distance approximation `Euclidean(h_f^1, h_f^2)`.
    pub fn approx_distance(&self, a: &Trajectory, b: &Trajectory) -> f32 {
        self.embed(a).distance(&self.embed(b))
    }

    /// Serializes all parameters.
    pub fn save_bytes(&self) -> Vec<u8> {
        self.params.save_bytes()
    }

    /// Restores parameters saved by [`Traj2Hash::save_bytes`].
    pub fn load_bytes(&self, bytes: &[u8]) -> Result<(), String> {
        self.params.load_bytes(bytes)
    }

    /// Writes the parameters to a file.
    pub fn save_to_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_bytes())
    }

    /// Restores parameters from a file written by
    /// [`Traj2Hash::save_to_file`]. The model must have been constructed
    /// with the same configuration.
    pub fn load_from_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let bytes = std::fs::read(path)?;
        self.load_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    fn setup(cfg: ModelConfig) -> (Traj2Hash, Vec<Trajectory>) {
        let trajs = CityGenerator::new(CityParams::test_city(), 1).generate(12);
        let ctx = ModelContext::prepare(&trajs, &cfg, 5);
        (Traj2Hash::new(cfg, &ctx, 6), trajs)
    }

    #[test]
    fn embedding_has_configured_width() {
        let (model, trajs) = setup(ModelConfig::tiny());
        let e = model.embed(&trajs[0]);
        assert_eq!(e.shape(), (1, model.embedding_dim()));
        assert!(e.is_finite());
    }

    #[test]
    fn reverse_symmetric_property_holds() {
        // Lemma 3: E(h(T1), h(T2)) == E(h(T1^r), h(T2^r)) for an
        // *untrained* network already — it is a structural property.
        let (model, trajs) = setup(ModelConfig::tiny());
        let (a, b) = (&trajs[0], &trajs[1]);
        let d_fwd = model.approx_distance(a, b);
        let d_rev = model.approx_distance(&a.reversed(), &b.reversed());
        assert!(
            (d_fwd - d_rev).abs() < 1e-4,
            "reverse symmetry violated: {d_fwd} vs {d_rev}"
        );
    }

    #[test]
    fn without_rev_aug_property_breaks() {
        let (model, trajs) = setup(ModelConfig::tiny().without_rev_aug());
        let (a, b) = (&trajs[0], &trajs[1]);
        let d_fwd = model.approx_distance(a, b);
        let d_rev = model.approx_distance(&a.reversed(), &b.reversed());
        assert!(
            (d_fwd - d_rev).abs() > 1e-4,
            "-RevAug should not satisfy reverse symmetry ({d_fwd} vs {d_rev})"
        );
    }

    #[test]
    fn embed_batch_is_bit_identical_to_embed() {
        // With and without reverse augmentation: the batched dense
        // layers must reproduce the per-trajectory forward exactly —
        // the sharded engine's `query_many` parity depends on it.
        for cfg in [ModelConfig::tiny(), ModelConfig::tiny().without_rev_aug()] {
            let (model, trajs) = setup(cfg);
            assert!(model.embed_batch(&[]).is_empty());
            let batched = model.embed_batch(&trajs);
            assert_eq!(batched.len(), trajs.len());
            for (t, row) in trajs.iter().zip(&batched) {
                assert_eq!(row.as_slice(), model.embed(t).data(), "batched row differs");
            }
        }
    }

    #[test]
    fn hash_signs_are_binary_and_match_embedding_sign() {
        let (model, trajs) = setup(ModelConfig::tiny());
        let e = model.embed(&trajs[0]);
        let h = model.hash_signs(&trajs[0]);
        assert_eq!(h.len(), e.len());
        for (&s, &x) in h.iter().zip(e.data()) {
            assert!(s == 1 || s == -1);
            assert_eq!(s == 1, x > 0.0);
        }
    }

    #[test]
    fn relaxed_hash_approaches_hard_sign_as_beta_grows() {
        let (mut model, trajs) = setup(ModelConfig::tiny());
        model.beta = 50.0;
        let tape = Tape::new();
        let relaxed = model.hash_var(&tape, &trajs[0]).value();
        let hard = model.hash_signs(&trajs[0]);
        for (&r, &s) in relaxed.data().iter().zip(&hard) {
            assert!((r - s as f32).abs() < 0.2, "relaxed {r} vs hard {s}");
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_embeddings() {
        let (model, trajs) = setup(ModelConfig::tiny());
        let before = model.embed(&trajs[0]);
        let blob = model.save_bytes();

        let ctx = ModelContext::prepare(&trajs, &ModelConfig::tiny(), 5);
        let other = Traj2Hash::new(ModelConfig::tiny(), &ctx, 999);
        assert!(other.embed(&trajs[0]).max_abs_diff(&before) > 1e-6);
        other.load_bytes(&blob).unwrap();
        assert!(other.embed(&trajs[0]).max_abs_diff(&before) < 1e-6);
    }

    #[test]
    fn file_roundtrip() {
        let (model, trajs) = setup(ModelConfig::tiny());
        let path = std::env::temp_dir().join("traj2hash_test_model.bin");
        model.save_to_file(&path).unwrap();
        let ctx = ModelContext::prepare(&trajs, &ModelConfig::tiny(), 5);
        let other = Traj2Hash::new(ModelConfig::tiny(), &ctx, 31337);
        other.load_from_file(&path).unwrap();
        assert_eq!(model.hash_signs(&trajs[0]), other.hash_signs(&trajs[0]));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn grids_ablation_still_works() {
        let (model, trajs) = setup(ModelConfig::tiny().without_grids());
        let e = model.embed(&trajs[0]);
        assert_eq!(e.cols(), model.embedding_dim());
        assert!(e.is_finite());
    }
}
