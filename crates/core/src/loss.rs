//! Training objectives (Section IV-F): the weighted mean squared error on
//! seed similarities (Eq. 17) and the ranking-based hashing objective
//! (Eq. 18–20).

use rand::rngs::StdRng;
use rand::RngExt;
use tinynn::{Tape, Var};
use traj_dist::SparseSimilarity;

/// The model's similarity approximation
/// `g(T_i, T_j) = exp(-Euclidean(h_f^i, h_f^j))` as a tape variable.
pub fn approx_similarity(e_i: &Var, e_j: &Var) -> Var {
    e_i.distance(e_j).neg().exp()
}

/// One WMSE term `r_j * (g - s)^2` (summand of Eq. 17).
pub fn wmse_term(tape: &Tape, g: &Var, s: f64, weight: f32) -> Var {
    let target = tape.constant(tinynn::Tensor::scalar(s as f32));
    g.sub(&target).square().scale(weight).sum_all()
}

/// Ranking weights `r_j` by sample rank (NeuTraj-style): the j-th most
/// similar sample gets weight proportional to `m - rank`, normalized to
/// sum to 1. More similar samples therefore dominate the loss, matching
/// the "sample weight computed according to the ranking order" of Eq. 17.
pub fn rank_weights(m: usize) -> Vec<f32> {
    if m == 0 {
        return Vec::new();
    }
    let total: f32 = (1..=m).map(|k| k as f32).sum();
    (0..m).map(|rank| (m - rank) as f32 / total).collect()
}

/// The ranking hinge on relaxed codes, inner-product form (Eq. 19–20):
/// `[ -z_a . z_p + z_a . z_n + alpha ]_+`.
pub fn ranking_hash_loss(z_a: &Var, z_p: &Var, z_n: &Var, alpha: f32) -> Var {
    let pos = z_a.dot(z_p);
    let neg = z_a.dot(z_n);
    neg.sub(&pos).add_scalar(alpha).relu()
}

/// Samples `m` companion indices for anchor `i` out of `n` candidates:
/// the `m/2` most similar (by the supervision row `sim_row`) plus `m/2`
/// uniform random others — NeuTraj's sampling scheme, which the paper
/// follows. Returns indices sorted by descending similarity so that
/// [`rank_weights`] and the pairing of Eq. 18 can be applied directly.
pub fn sample_companions(
    i: usize,
    sim_row: &[f64],
    m: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = sim_row.len();
    assert!(n >= 2, "need at least two trajectories to sample companions");
    let m = m.min(n - 1);
    let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
    order.sort_by(by_similarity_desc(sim_row));
    let nearest = m / 2;
    let mut chosen: Vec<usize> = order[..nearest].to_vec();
    // random fill from the remainder
    let rest = &order[nearest..];
    let mut picked = std::collections::HashSet::new();
    while chosen.len() < m && picked.len() < rest.len() {
        let r = rng.random_range(0..rest.len());
        if picked.insert(r) {
            chosen.push(rest[r]);
        }
    }
    chosen.sort_by(by_similarity_desc(sim_row));
    chosen
}

/// [`sample_companions`] over the sparse supervision structure: the
/// anchor's row is materialized — exact stored similarities plus the
/// per-row pruning floor for every unstored pair — and fed through the
/// same sampling logic. The anchor's true `k` nearest neighbours are
/// always stored with similarity at least the floor, so the "most
/// similar" half of the sample is exact whenever `supervision_k`
/// covers it; and a fully-stored row draws the bit-identical companion
/// sequence the dense path would.
pub fn sample_companions_sparse(
    i: usize,
    sim: &SparseSimilarity,
    m: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    sample_companions(i, &sim.dense_row(i), m, rng)
}

/// Descending-similarity comparator with explicit NaN policy: a NaN
/// similarity sorts *last* (least similar) instead of wherever a failed
/// `partial_cmp` happened to leave it — a naive `total_cmp` descending
/// sort would rank positive NaN as the *most* similar companion. Ties
/// break on ascending index so companion order is deterministic.
fn by_similarity_desc(sim_row: &[f64]) -> impl Fn(&usize, &usize) -> std::cmp::Ordering + '_ {
    move |&a, &b| match (sim_row[a].is_nan(), sim_row[b].is_nan()) {
        (true, true) => a.cmp(&b),
        (true, false) => std::cmp::Ordering::Greater,
        (false, true) => std::cmp::Ordering::Less,
        (false, false) => sim_row[b].total_cmp(&sim_row[a]).then(a.cmp(&b)),
    }
}

/// Groups a similarity-sorted companion list into `(positive, negative)`
/// pairs for the ranking objective of Eq. 18: the k-th most similar is
/// paired with the k-th least similar.
pub fn rank_pairs(sorted: &[usize]) -> Vec<(usize, usize)> {
    let m = sorted.len();
    (0..m / 2).map(|k| (sorted[k], sorted[m - 1 - k])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use tinynn::Tensor;

    #[test]
    fn approx_similarity_is_one_for_identical() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::row_vector(&[1.0, 2.0]));
        let s = approx_similarity(&a, &a);
        assert!((s.item() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn approx_similarity_decreases_with_distance() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::row_vector(&[0.0, 0.0]));
        let near = tape.constant(Tensor::row_vector(&[0.1, 0.0]));
        let far = tape.constant(Tensor::row_vector(&[5.0, 0.0]));
        assert!(approx_similarity(&a, &near).item() > approx_similarity(&a, &far).item());
    }

    #[test]
    fn rank_weights_sum_to_one_and_decrease() {
        let w = rank_weights(10);
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        for k in 1..10 {
            assert!(w[k - 1] > w[k]);
        }
        assert!(rank_weights(0).is_empty());
    }

    #[test]
    fn ranking_loss_zero_when_margin_satisfied() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::row_vector(&[1.0, 1.0, 1.0, 1.0]));
        let p = tape.constant(Tensor::row_vector(&[1.0, 1.0, 1.0, 1.0]));
        let n = tape.constant(Tensor::row_vector(&[-1.0, -1.0, -1.0, -1.0]));
        // -4 + (-4) + alpha with alpha = 5 => -3 => clamped to 0
        let l = ranking_hash_loss(&a, &p, &n, 5.0);
        assert_eq!(l.item(), 0.0);
        // with alpha = 9 the hinge activates: -4 - 4 + 9 = 1
        let l2 = ranking_hash_loss(&a, &p, &n, 9.0);
        assert!((l2.item() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn ranking_loss_penalizes_wrong_order() {
        let tape = Tape::new();
        let a = tape.constant(Tensor::row_vector(&[1.0, 1.0]));
        let p = tape.constant(Tensor::row_vector(&[-1.0, -1.0]));
        let n = tape.constant(Tensor::row_vector(&[1.0, 1.0]));
        // -(-2) + 2 + 0 = 4
        let l = ranking_hash_loss(&a, &p, &n, 0.0);
        assert!((l.item() - 4.0).abs() < 1e-5);
    }

    #[test]
    fn sample_companions_includes_nearest() {
        let mut rng = StdRng::seed_from_u64(1);
        // anchor 0; candidate 3 is the most similar
        let sim = vec![1.0, 0.2, 0.5, 0.9, 0.1, 0.3];
        let c = sample_companions(0, &sim, 4, &mut rng);
        assert_eq!(c.len(), 4);
        assert!(c.contains(&3), "nearest neighbour must be sampled");
        assert!(c.contains(&2), "second nearest must be sampled (m/2 = 2)");
        assert!(!c.contains(&0), "anchor must not sample itself");
        // sorted by descending similarity
        for w in c.windows(2) {
            assert!(sim[w[0]] >= sim[w[1]]);
        }
    }

    #[test]
    fn sparse_sampling_matches_dense_when_fully_stored() {
        use traj_data::{CityGenerator, CityParams};
        use traj_dist::{
            auto_theta, distance_matrix, pruned_self_top_k, similarity_matrix,
            sparse_similarity, Measure, PrunedTopK,
        };
        let trajs = CityGenerator::new(CityParams::test_city(), 11).generate(12);
        let n = trajs.len();
        let cfg = PrunedTopK::new(n - 1).keeping_distances();
        let sd = pruned_self_top_k(&trajs, Measure::Dtw, &cfg).unwrap().distances.unwrap();
        let dense_d = distance_matrix(&trajs, Measure::Dtw);
        let theta = auto_theta(&dense_d, 0.5);
        let sparse = sparse_similarity(&sd, theta);
        let dense = similarity_matrix(&dense_d, theta);
        for i in 0..n {
            let mut r1 = StdRng::seed_from_u64(9 + i as u64);
            let mut r2 = StdRng::seed_from_u64(9 + i as u64);
            assert_eq!(
                sample_companions_sparse(i, &sparse, 6, &mut r1),
                sample_companions(i, dense.row(i), 6, &mut r2),
                "anchor {i} sampled differently through the sparse row"
            );
        }
    }

    #[test]
    fn sparse_sampling_takes_nearest_half_from_stored_pairs() {
        use traj_data::{CityGenerator, CityParams};
        use traj_dist::{
            auto_theta_sparse, pruned_self_top_k, sparse_similarity, Measure, PrunedTopK,
        };
        let trajs = CityGenerator::new(CityParams::test_city(), 13).generate(60);
        let cfg = PrunedTopK::new(8).keeping_distances();
        let sd = pruned_self_top_k(&trajs, Measure::Hausdorff, &cfg).unwrap().distances.unwrap();
        let sparse = sparse_similarity(&sd, auto_theta_sparse(&sd, 0.5));
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..trajs.len() {
            let c = sample_companions_sparse(i, &sparse, 6, &mut rng);
            assert_eq!(c.len(), 6);
            let (cols, _) = sparse.row(i);
            // the 8 true nearest neighbours are all stored, so the exact
            // half of the sample (m/2 = 3 most similar) must come from
            // the stored row, never from a floor-valued pruned pair
            for &j in &c[..3] {
                assert!(cols.contains(&j), "anchor {i}: near companion {j} is not stored");
            }
        }
    }

    #[test]
    fn rank_pairs_pair_extremes() {
        let sorted = vec![10, 11, 12, 13];
        let pairs = rank_pairs(&sorted);
        assert_eq!(pairs, vec![(10, 13), (11, 12)]);
    }

    #[test]
    fn wmse_term_value() {
        let tape = Tape::new();
        let g = tape.constant(Tensor::scalar(0.8));
        let l = wmse_term(&tape, &g, 0.5, 2.0);
        assert!((l.item() - 2.0 * 0.09).abs() < 1e-5);
    }
}
