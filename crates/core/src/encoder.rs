//! The two-channel trajectory encoder (Sections IV-C and IV-D).

use crate::config::{ModelConfig, Readout};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};
use tinynn::sync::{cread, cwrite};
use tinynn::{layers::positional_encoding_cached, Linear, Mlp, Param, ParamSet, Tape, Tensor, Var};
use traj_data::{NormStats, Trajectory};
use traj_grid::{GridEmbedding, GridSpec};
use rand::Rng;

/// Shared cache of the frozen grid-channel input sequences, keyed by a
/// content hash of the trajectory. The cached tensor is everything in
/// front of the trainable MLP — grid-cell embeddings plus positional
/// encoding — which is constant for the whole run because the grid
/// embeddings are frozen after NCE pre-training.
///
/// Invalidation rule: entries depend only on the trajectory's points, the
/// grid spec, and the frozen embedding table, all of which are fixed for
/// the lifetime of a model. A new model (new spec or re-pre-trained
/// embedding) must start from a fresh cache; replicas of the *same* model
/// share one cache across threads.
pub type GridInputCache = Arc<RwLock<HashMap<u64, Arc<Tensor>>>>;

/// 64-bit FNV-1a over the raw coordinate bits. Trajectories have no id,
/// so the cache keys on content; a collision would require two corpus
/// trajectories hashing identically (~n^2 / 2^64 chance).
fn trajectory_key(t: &Trajectory) -> u64 {
    const OFFSET: u64 = 0xcbf29ce484222325;
    const PRIME: u64 = 0x100000001b3;
    let mut h = OFFSET;
    for p in &t.points {
        for bits in [p.x.to_bits(), p.y.to_bits()] {
            h = (h ^ bits).wrapping_mul(PRIME);
        }
    }
    h
}

/// The light-weight grid channel (Section IV-C): frozen pre-trained grid
/// embeddings + positional encoding + two-layer MLP + mean pooling
/// (Eq. 9). The embedding provider is pluggable so the decomposed
/// representation can be compared against Node2vec (Fig. 7).
pub struct GridChannelEncoder {
    spec: GridSpec,
    emb: Arc<dyn GridEmbedding + Send + Sync>,
    cache: GridInputCache,
    mlp: Mlp,
}

impl GridChannelEncoder {
    /// Builds the channel from a pre-trained (frozen) grid embedding.
    /// Model replicas pass the same `cache` handle so the frozen input
    /// sequence of each trajectory is computed once per run.
    pub fn new<R: Rng>(
        rng: &mut R,
        params: &mut ParamSet,
        spec: GridSpec,
        emb: Arc<dyn GridEmbedding + Send + Sync>,
        cache: GridInputCache,
        out_dim: usize,
    ) -> Self {
        let gd = emb.dim();
        let mlp = Mlp::new(rng, params, &[gd, gd, out_dim]);
        GridChannelEncoder { spec, emb, cache, mlp }
    }

    /// Computes the frozen pre-MLP input sequence (grid embeddings with
    /// positional encoding added), bypassing the cache.
    pub fn grid_input_uncached(&self, t: &Trajectory) -> Tensor {
        let cells = self.spec.grid_trajectory(t);
        let gd = self.emb.dim();
        let n = cells.len();
        let mut data = vec![0.0f32; n * gd];
        for (i, &(gx, gy)) in cells.iter().enumerate() {
            self.emb.embed_into(gx, gy, &mut data[i * gd..(i + 1) * gd]);
        }
        let mut seq = Tensor::from_vec(n, gd, data);
        seq.add_assign(&positional_encoding_cached(n, gd));
        seq
    }

    /// The frozen pre-MLP input sequence for `t`, computed once per run
    /// and shared thereafter (bit-identical to the uncached path — it
    /// stores exactly what [`Self::grid_input_uncached`] produced).
    pub fn grid_input(&self, t: &Trajectory) -> Arc<Tensor> {
        let key = trajectory_key(t);
        if let Some(hit) = cread(&self.cache).get(&key) {
            return Arc::clone(hit);
        }
        let fresh = Arc::new(self.grid_input_uncached(t));
        let mut w = cwrite(&self.cache);
        Arc::clone(w.entry(key).or_insert(fresh))
    }

    /// Encodes a trajectory's grid channel into a `1 x d` vector.
    ///
    /// The grid embeddings are pre-trained and frozen (the paper freezes
    /// them "since the spatial information may be poisoned after
    /// updating"), so they enter the tape as constants; only the MLP is
    /// trainable. The constant part comes from the shared cache without
    /// being copied.
    pub fn forward(&self, tape: &Tape, t: &Trajectory) -> Var {
        let seq = tape.constant_arc(self.grid_input(t));
        self.mlp.forward(tape, &seq).mean_rows()
    }

    /// The underlying fine grid specification.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The frozen embedding provider (shared with replicas).
    pub fn embedding(&self) -> Arc<dyn GridEmbedding + Send + Sync> {
        Arc::clone(&self.emb)
    }

    /// The shared input cache handle.
    pub fn cache(&self) -> GridInputCache {
        Arc::clone(&self.cache)
    }
}

/// The attention-based GPS channel (Section IV-D): point feature MLP
/// (Eq. 10) + positional encoding + `m` Attention–MLP residual blocks
/// (Eq. 11–12) + a configurable read-out (Eq. 13 / Fig. 4).
pub struct GpsChannelEncoder {
    point_mlp: Linear,
    blocks: Vec<tinynn::EncoderBlock>,
    readout: Readout,
    cls: Option<Param>,
    norm: NormStats,
    dim: usize,
}

impl GpsChannelEncoder {
    /// Builds the channel.
    pub fn new<R: Rng>(
        rng: &mut R,
        params: &mut ParamSet,
        cfg: &ModelConfig,
        norm: NormStats,
    ) -> Self {
        let dim = cfg.dim;
        let point_mlp = Linear::new(rng, params, 2, dim);
        let blocks = (0..cfg.blocks)
            .map(|_| tinynn::EncoderBlock::new(rng, params, dim, 2 * dim, cfg.heads))
            .collect();
        let cls = match cfg.readout {
            Readout::Cls => Some(params.register(Param::new(tinynn::init::normal(
                rng,
                1,
                dim,
                0.1,
            )))),
            _ => None,
        };
        GpsChannelEncoder { point_mlp, blocks, readout: cfg.readout, cls, norm, dim }
    }

    /// Encodes a trajectory into a `1 x d` vector.
    pub fn forward(&self, tape: &Tape, t: &Trajectory) -> Var {
        assert!(!t.is_empty(), "cannot encode an empty trajectory");
        let feats = self.norm.apply(t);
        let x = tape.constant(Tensor::from_vec(t.len(), 2, feats));
        let mut seq = self.point_mlp.forward(tape, &x);
        // positional encoding: e_l_i <- e_l_i + p_i (Eq. 10 text)
        let pe = tape.constant_arc(positional_encoding_cached(t.len(), self.dim));
        seq = seq.add(&pe);
        if let Some(cls) = &self.cls {
            let token = tape.param(cls);
            seq = token.concat_rows(&seq);
        }
        for block in &self.blocks {
            seq = block.forward(tape, &seq);
        }
        match self.readout {
            // Eq. 13: the first point is the anchor that aggregated
            // information from every other point through attention.
            Readout::LowerBound => seq.select_row(0),
            Readout::Mean => seq.mean_rows(),
            Readout::Cls => seq.select_row(0),
        }
    }

    /// Model dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Normalization statistics in use.
    pub fn norm(&self) -> &NormStats {
        &self.norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use traj_data::{BoundingBox, CityGenerator, CityParams};
    use traj_grid::{DecomposedGridEmbedding, NceConfig};

    fn setup() -> (Vec<Trajectory>, NormStats, GridSpec, DecomposedGridEmbedding) {
        let params = CityParams::test_city();
        let trajs = CityGenerator::new(params.clone(), 1).generate(10);
        let norm = NormStats::fit(&trajs);
        let spec = GridSpec::new(BoundingBox::from_extent(params.width, params.height), 100.0);
        let mut emb = DecomposedGridEmbedding::init(&spec, 16, 2);
        emb.pretrain(&spec, &NceConfig { dim: 16, epochs: 1, ..NceConfig::default() });
        (trajs, norm, spec, emb)
    }

    #[test]
    fn grid_channel_outputs_row_vector() {
        let (trajs, _, spec, emb) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let enc = GridChannelEncoder::new(
            &mut rng,
            &mut ps,
            spec,
            Arc::new(emb),
            GridInputCache::default(),
            16,
        );
        let tape = Tape::new();
        let h = enc.forward(&tape, &trajs[0]);
        assert_eq!(h.shape(), (1, 16));
        assert!(h.value().is_finite());
    }

    #[test]
    fn grid_input_cache_is_bit_identical_to_uncached() {
        let (trajs, _, spec, emb) = setup();
        let mut rng = StdRng::seed_from_u64(3);
        let mut ps = ParamSet::new();
        let enc = GridChannelEncoder::new(
            &mut rng,
            &mut ps,
            spec,
            Arc::new(emb),
            GridInputCache::default(),
            16,
        );
        for t in &trajs {
            let cached = enc.grid_input(t); // populates the cache
            let again = enc.grid_input(t); // served from the cache
            assert!(Arc::ptr_eq(&cached, &again), "second lookup must hit the cache");
            assert_eq!(*cached, enc.grid_input_uncached(t), "cache must be bit-identical");
        }
    }

    #[test]
    fn gps_channel_readouts_differ() {
        let (trajs, norm, _, _) = setup();
        let mut rng = StdRng::seed_from_u64(4);
        for readout in [Readout::LowerBound, Readout::Mean, Readout::Cls] {
            let mut ps = ParamSet::new();
            let cfg = ModelConfig { readout, ..ModelConfig::tiny() };
            let enc = GpsChannelEncoder::new(&mut rng, &mut ps, &cfg, norm);
            let tape = Tape::new();
            let h = enc.forward(&tape, &trajs[0]);
            assert_eq!(h.shape(), (1, cfg.dim));
            assert!(h.value().is_finite());
        }
    }

    #[test]
    fn lowerbound_readout_is_first_point_anchored() {
        // Changing the last point must affect the read-out less than
        // changing the first point does (the first point is the anchor).
        let (trajs, norm, _, _) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let cfg = ModelConfig::tiny();
        let enc = GpsChannelEncoder::new(&mut rng, &mut ps, &cfg, norm);
        let base = &trajs[0];
        let tape = Tape::new();
        let h0 = enc.forward(&tape, base).value();

        let mut first_changed = base.clone();
        first_changed.points[0].x += 500.0;
        let mut last_changed = base.clone();
        let n = last_changed.len();
        last_changed.points[n - 1].x += 500.0;

        let hf = enc.forward(&tape, &first_changed).value();
        let hl = enc.forward(&tape, &last_changed).value();
        let df = h0.distance(&hf);
        let dl = h0.distance(&hl);
        assert!(
            df > dl,
            "first-point perturbation ({df}) should dominate last-point ({dl})"
        );
    }

    #[test]
    fn gradients_reach_encoder_parameters() {
        let (trajs, norm, spec, emb) = setup();
        let mut rng = StdRng::seed_from_u64(6);
        let mut ps = ParamSet::new();
        let cfg = ModelConfig::tiny();
        let gps = GpsChannelEncoder::new(&mut rng, &mut ps, &cfg, norm);
        let grid = GridChannelEncoder::new(
            &mut rng,
            &mut ps,
            spec,
            Arc::new(emb),
            GridInputCache::default(),
            cfg.dim,
        );
        let tape = Tape::new();
        let h = gps
            .forward(&tape, &trajs[0])
            .concat_cols(&grid.forward(&tape, &trajs[0]));
        h.square().mean_all().backward();
        let with_grad = ps.iter().filter(|p| p.borrow().grad.norm() > 0.0).count();
        assert!(with_grad > 0);
        // At minimum the two input projections and the grid MLP get grads.
        assert!(with_grad >= ps.len() / 2, "{with_grad}/{} params got gradients", ps.len());
    }
}
