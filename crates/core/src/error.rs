//! Typed training errors, replacing the library-code asserts the seed
//! used (a bad config or degenerate dataset should be handleable by
//! the caller, not abort the process).

use crate::checkpoint::CheckpointError;
use std::fmt;
use traj_dist::PruneError;

/// Why training could not start or complete.
#[derive(Debug)]
pub enum TrainError {
    /// A [`crate::TrainConfig`] field is out of its valid range.
    InvalidConfig(String),
    /// The similarity supervision needs at least two seed trajectories.
    TooFewSeeds {
        /// Seeds actually supplied.
        got: usize,
    },
    /// Triplet generation needs a non-empty corpus.
    EmptyCorpus,
    /// The sparse supervision sweep failed (an invalid bucket cell size
    /// or a worker panic inside the pruned exact driver).
    Supervision(PruneError),
    /// The divergence guard exhausted its rollback budget: the loss
    /// kept spiking or going non-finite after every retry.
    Diverged {
        /// Epoch that kept failing.
        epoch: usize,
        /// The last offending loss value.
        loss: f32,
        /// How many rollbacks were attempted at this epoch.
        retries: usize,
    },
    /// Reading or writing a checkpoint failed.
    Checkpoint(CheckpointError),
    /// A checkpoint decoded cleanly but its parameter blob does not fit
    /// this model (count or shape mismatch — usually a config drift
    /// between the saving and resuming run).
    IncompatibleCheckpoint(String),
    /// The debug-build static verifier rejected a compiled batch plan or
    /// a recorded loss tape before `backward` ran (shape drift, severed
    /// gradient flow, duplicate slot writes, poisoned supervision).
    InvalidGraph(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig(s) => write!(f, "invalid train config: {s}"),
            TrainError::TooFewSeeds { got } => {
                write!(f, "need at least two seed trajectories, got {got}")
            }
            TrainError::EmptyCorpus => write!(f, "triplet generation needs a non-empty corpus"),
            TrainError::Supervision(e) => write!(f, "sparse supervision sweep failed: {e}"),
            TrainError::Diverged { epoch, loss, retries } => write!(
                f,
                "training diverged at epoch {epoch} (loss {loss}) and did not recover \
                 after {retries} rollbacks"
            ),
            TrainError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            TrainError::IncompatibleCheckpoint(s) => {
                write!(f, "checkpoint incompatible with this model: {s}")
            }
            TrainError::InvalidGraph(s) => {
                write!(f, "static verification rejected the training graph: {s}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Supervision(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<PruneError> for TrainError {
    fn from(e: PruneError) -> Self {
        TrainError::Supervision(e)
    }
}
