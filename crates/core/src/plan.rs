//! Compiled mini-batch plans and their pre-execution verifier.
//!
//! The trainer compiles every mini-batch into a [`BatchPlan`] — a
//! slot-deduplicated list of trajectories plus loss terms expressed over
//! those slots — before any tensor work happens. That makes the batch an
//! *analysable artifact*: this module's [`BatchPlan::verify`] walks the
//! plan and rejects inconsistencies (out-of-range slots, duplicate slot
//! writes, non-finite supervision, a degenerate scale) with a typed
//! [`PlanIssue`] list instead of letting them surface as a panic or a
//! silently-poisoned gradient deep inside `backward`.
//!
//! The plan verifier pairs with [`tinynn::verify::verify_tape`]: the
//! plan is checked before the forward passes run, the recorded loss tape
//! is checked before `backward` runs. The trainer wires both into a
//! debug-build hook on the first batch of every epoch.

use crate::config::TrainConfig;
use crate::loss::{rank_pairs, rank_weights, sample_companions_sparse};
use crate::trainer::TrainData;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::fmt;
use traj_data::Trajectory;
use traj_grid::Triplet;

/// One WMSE anchor's loss terms, expressed over *slots* — indices into
/// the batch's deduplicated trajectory list.
pub(crate) struct AnchorTerm {
    /// Slot of the anchor embedding.
    pub(crate) anchor: usize,
    /// `(companion slot, target similarity, rank weight)` per companion,
    /// in sampling order (Eq. 17's targets and weights, precomputed so
    /// the loss graph needs no access to the similarity matrix).
    pub(crate) companions: Vec<(usize, f64, f32)>,
    /// Ranking pairs `(positive slot, negative slot)` from Eq. 18/19.
    pub(crate) pairs: Vec<(usize, usize)>,
}

/// One loss term of a [`BatchPlan`].
pub(crate) enum LossTerm {
    /// WMSE + ranking objective for one seed anchor (`L_s + gamma L_r`).
    Anchor(AnchorTerm),
    /// One generated corpus triplet (`L_t`), as slots.
    Triplet {
        /// Anchor slot.
        a: usize,
        /// Positive slot.
        p: usize,
        /// Negative slot.
        n: usize,
    },
}

/// A mini-batch compiled to slot form: every distinct trajectory of the
/// batch appears exactly once in `trajs` (first-appearance order) and
/// the loss terms reference embeddings by slot. The trajectory list is
/// the batch's unit of parallelism — each slot is one independent
/// forward/backward — and it is fixed by the batch *content*, never by
/// the thread count, so the embedding work list and the floating-point
/// gradient reduction order are identical for every `num_threads`.
pub(crate) struct BatchPlan<'a> {
    /// Slot → trajectory, deduplicated in first-appearance order.
    pub(crate) trajs: Vec<&'a Trajectory>,
    /// Loss terms in batch order.
    pub(crate) terms: Vec<LossTerm>,
    /// Batch normalizer applied once to the summed loss.
    pub(crate) scale: f32,
}

/// One inconsistency found by [`BatchPlan::verify`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum PlanIssue {
    /// The plan has no trajectories or no loss terms — nothing to train.
    Empty,
    /// A loss term references a slot outside the trajectory list.
    SlotOutOfRange {
        /// Which term.
        term: usize,
        /// The offending slot.
        slot: usize,
        /// Slot count.
        slots: usize,
    },
    /// Two slots intern the same trajectory — a duplicate slot write:
    /// the dedup invariant is broken and the fixed-order gradient
    /// reduction would double-count that trajectory's gradient.
    DuplicateSlot {
        /// First slot holding the trajectory.
        first: usize,
        /// Second slot holding the same trajectory.
        second: usize,
    },
    /// An anchor term with no companions (it would contribute no loss
    /// but still force a forward pass).
    EmptyAnchor {
        /// Which term.
        term: usize,
    },
    /// A companion target or weight is non-finite (poisoned supervision
    /// would propagate NaN into every parameter via the shared loss sum).
    NonFiniteSupervision {
        /// Which term.
        term: usize,
    },
    /// The batch scale is non-finite or non-positive.
    BadScale {
        /// The offending scale.
        scale: f32,
    },
}

impl fmt::Display for PlanIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanIssue::Empty => write!(f, "plan has no trajectories or no loss terms"),
            PlanIssue::SlotOutOfRange { term, slot, slots } => {
                write!(f, "term {term} references slot {slot} of {slots}")
            }
            PlanIssue::DuplicateSlot { first, second } => {
                write!(f, "slots {first} and {second} intern the same trajectory")
            }
            PlanIssue::EmptyAnchor { term } => {
                write!(f, "anchor term {term} has no companions")
            }
            PlanIssue::NonFiniteSupervision { term } => {
                write!(f, "term {term} carries a non-finite target or weight")
            }
            PlanIssue::BadScale { scale } => write!(f, "batch scale {scale} is not usable"),
        }
    }
}

impl BatchPlan<'_> {
    /// Statically verifies the plan; returns every issue found (empty
    /// means the plan is safe to execute).
    pub(crate) fn verify(&self) -> Vec<PlanIssue> {
        let mut issues = Vec::new();
        let slots = self.trajs.len();
        if slots == 0 || self.terms.is_empty() {
            issues.push(PlanIssue::Empty);
        }
        if !self.scale.is_finite() || self.scale <= 0.0 {
            issues.push(PlanIssue::BadScale { scale: self.scale });
        }
        // Duplicate slot writes: the interner guarantees one slot per
        // distinct trajectory, so two slots holding the same reference
        // mean the plan was assembled by hand or corrupted.
        for i in 0..slots {
            for j in (i + 1)..slots {
                if std::ptr::eq(self.trajs[i], self.trajs[j]) {
                    issues.push(PlanIssue::DuplicateSlot { first: i, second: j });
                }
            }
        }
        let check_slot = |issues: &mut Vec<PlanIssue>, term: usize, slot: usize| {
            if slot >= slots {
                issues.push(PlanIssue::SlotOutOfRange { term, slot, slots });
            }
        };
        for (t, term) in self.terms.iter().enumerate() {
            match term {
                LossTerm::Anchor(a) => {
                    check_slot(&mut issues, t, a.anchor);
                    if a.companions.is_empty() {
                        issues.push(PlanIssue::EmptyAnchor { term: t });
                    }
                    for &(slot, target, weight) in &a.companions {
                        check_slot(&mut issues, t, slot);
                        if !target.is_finite() || !weight.is_finite() {
                            issues.push(PlanIssue::NonFiniteSupervision { term: t });
                            break;
                        }
                    }
                    for &(p, n) in &a.pairs {
                        check_slot(&mut issues, t, p);
                        check_slot(&mut issues, t, n);
                    }
                }
                LossTerm::Triplet { a, p, n } => {
                    check_slot(&mut issues, t, *a);
                    check_slot(&mut issues, t, *p);
                    check_slot(&mut issues, t, *n);
                }
            }
        }
        issues
    }
}

/// Interns trajectory `idx` of `pool` into the plan's slot list.
fn slot_for<'a>(
    idx: usize,
    pool: &'a [Trajectory],
    slot_of: &mut HashMap<usize, usize>,
    trajs: &mut Vec<&'a Trajectory>,
) -> usize {
    *slot_of.entry(idx).or_insert_with(|| {
        trajs.push(&pool[idx]);
        trajs.len() - 1
    })
}

/// Compiles one WMSE/ranking batch of seed anchors into a plan. Draws
/// companion samples from `rng` in anchor order (the RNG stream is the
/// same for every thread count). Returns `None` when no anchor in the
/// batch has companions.
pub(crate) fn wmse_plan<'a>(
    data: &'a TrainData,
    cfg: &TrainConfig,
    batch: &[usize],
    rng: &mut StdRng,
) -> Option<BatchPlan<'a>> {
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    let mut trajs: Vec<&Trajectory> = Vec::new();
    let mut terms: Vec<LossTerm> = Vec::new();
    for &i in batch {
        let companions = sample_companions_sparse(i, &data.sim, cfg.samples_per_anchor, rng);
        if companions.is_empty() {
            continue;
        }
        let anchor = slot_for(i, &data.seeds, &mut slot_of, &mut trajs);
        let weights = rank_weights(companions.len());
        let comp = companions
            .iter()
            .enumerate()
            .map(|(rank, &j)| {
                (slot_for(j, &data.seeds, &mut slot_of, &mut trajs), data.sim.get(i, j), weights[rank])
            })
            .collect();
        let pairs = rank_pairs(&companions)
            .into_iter()
            .map(|(p, n)| {
                (
                    slot_for(p, &data.seeds, &mut slot_of, &mut trajs),
                    slot_for(n, &data.seeds, &mut slot_of, &mut trajs),
                )
            })
            .collect();
        terms.push(LossTerm::Anchor(AnchorTerm { anchor, companions: comp, pairs }));
    }
    if terms.is_empty() {
        return None;
    }
    Some(BatchPlan { trajs, terms, scale: 1.0 / batch.len() as f32 })
}

/// Compiles one generated-triplet batch into a plan (Eq. 20; the
/// `gamma` weight of Eq. 21 is folded into the scale).
pub(crate) fn triplet_plan<'a>(
    data: &'a TrainData,
    cfg: &TrainConfig,
    batch: &[Triplet],
) -> BatchPlan<'a> {
    let mut slot_of: HashMap<usize, usize> = HashMap::new();
    let mut trajs: Vec<&Trajectory> = Vec::new();
    let terms = batch
        .iter()
        .map(|&(a, p, n)| LossTerm::Triplet {
            a: slot_for(a, &data.corpus, &mut slot_of, &mut trajs),
            p: slot_for(p, &data.corpus, &mut slot_of, &mut trajs),
            n: slot_for(n, &data.corpus, &mut slot_of, &mut trajs),
        })
        .collect();
    BatchPlan { trajs, terms, scale: cfg.gamma / batch.len() as f32 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use traj_data::{CityGenerator, CityParams};

    fn pool(n: usize) -> Vec<Trajectory> {
        CityGenerator::new(CityParams::test_city(), 5).generate(n)
    }

    fn triplet_batch(pool: &[Trajectory]) -> BatchPlan<'_> {
        BatchPlan {
            trajs: vec![&pool[0], &pool[1], &pool[2]],
            terms: vec![LossTerm::Triplet { a: 0, p: 1, n: 2 }],
            scale: 0.5,
        }
    }

    #[test]
    fn well_formed_plans_verify_clean() {
        let pool = pool(4);
        assert!(triplet_batch(&pool).verify().is_empty());
        let anchor = BatchPlan {
            trajs: vec![&pool[0], &pool[1], &pool[2]],
            terms: vec![LossTerm::Anchor(AnchorTerm {
                anchor: 0,
                companions: vec![(1, 0.8, 1.0), (2, 0.3, 0.5)],
                pairs: vec![(1, 2)],
            })],
            scale: 1.0,
        };
        assert!(anchor.verify().is_empty());
    }

    #[test]
    fn out_of_range_slot_is_reported() {
        let pool = pool(4);
        let mut plan = triplet_batch(&pool);
        plan.terms = vec![LossTerm::Triplet { a: 0, p: 1, n: 9 }];
        assert_eq!(
            plan.verify(),
            vec![PlanIssue::SlotOutOfRange { term: 0, slot: 9, slots: 3 }]
        );
    }

    #[test]
    fn duplicate_slot_write_is_reported() {
        let pool = pool(4);
        let mut plan = triplet_batch(&pool);
        plan.trajs[2] = plan.trajs[0];
        assert_eq!(plan.verify(), vec![PlanIssue::DuplicateSlot { first: 0, second: 2 }]);
    }

    #[test]
    fn degenerate_plans_are_reported() {
        let pool = pool(4);
        let mut plan = triplet_batch(&pool);
        plan.scale = f32::NAN;
        let issues = plan.verify();
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], PlanIssue::BadScale { scale } if scale.is_nan()));
        let empty = BatchPlan { trajs: vec![], terms: vec![], scale: 1.0 };
        assert_eq!(empty.verify(), vec![PlanIssue::Empty]);
    }

    #[test]
    fn poisoned_supervision_is_reported() {
        let pool = pool(4);
        let plan = BatchPlan {
            trajs: vec![&pool[0], &pool[1]],
            terms: vec![LossTerm::Anchor(AnchorTerm {
                anchor: 0,
                companions: vec![(1, f64::NAN, 1.0)],
                pairs: vec![],
            })],
            scale: 1.0,
        };
        assert_eq!(plan.verify(), vec![PlanIssue::NonFiniteSupervision { term: 0 }]);
    }

    #[test]
    fn empty_anchor_is_reported() {
        let pool = pool(4);
        let plan = BatchPlan {
            trajs: vec![&pool[0]],
            terms: vec![LossTerm::Anchor(AnchorTerm {
                anchor: 0,
                companions: vec![],
                pairs: vec![],
            })],
            scale: 1.0,
        };
        assert_eq!(plan.verify(), vec![PlanIssue::EmptyAnchor { term: 0 }]);
    }
}
