//! Search-strategy comparison through the engine's `AnnIndex`
//! interface: every backend — Euclidean-BF, Hamming-BF, MIH, and the
//! Hamming-Hybrid table lookup — is timed through the same trait object
//! the serving engine dispatches to (the Section V-E experiment as a
//! runnable demo).
//!
//! ```text
//! cargo run --release --example hamming_search
//! ```

use std::time::Instant;
use traj_bench::clustered_workload;
use traj_engine::{AnnIndex, BruteForceEuclidean, BruteForceHamming, IndexKind, QueryRep};
use traj_index::{HammingTable, MultiIndexHashing};

fn main() {
    let bits = 32;
    let k = 10;
    let n_query = 100;
    println!("strategy timing, {bits}-bit codes, top-{k}, {n_query} queries");
    for n_db in [10_000usize, 50_000, 100_000] {
        let w = clustered_workload(n_db, n_query, bits, n_db / 400, 2, 11);

        // Count how many queries would resolve purely by radius-2 table
        // lookup before the table disappears behind the trait.
        let table = HammingTable::build(w.db_codes.clone());
        let resolved = w
            .query_codes
            .iter()
            .filter(|q| {
                table
                    .lookup_within(q, 2)
                    .expect("radius 2, matching widths")
                    .iter()
                    .map(|(_, v)| v.len())
                    .sum::<usize>()
                    >= k
            })
            .count();

        let backends: Vec<(&str, Box<dyn AnnIndex>)> = vec![
            (
                "Euclidean-BF",
                Box::new(
                    BruteForceEuclidean::new(w.db_embeddings.clone())
                        .expect("uniform embedding widths"),
                ),
            ),
            (
                "Hamming-BF",
                Box::new(BruteForceHamming::new(w.db_codes.clone()).expect("uniform code widths")),
            ),
            (
                "Hamming-MIH",
                Box::new(
                    MultiIndexHashing::try_build(w.db_codes.clone(), 4)
                        .expect("non-empty uniform codes"),
                ),
            ),
            ("Hamming-Hybrid", Box::new(table)),
        ];

        println!(
            "\n  db size {n_db} ({resolved}% of queries resolvable by radius-2 lookup)",
            resolved = resolved * 100 / n_query
        );
        for (name, backend) in &backends {
            // The trait tells us which representation to feed it.
            let queries: Vec<QueryRep<'_>> = match backend.kind() {
                IndexKind::Euclidean => {
                    w.query_embeddings.iter().map(|q| QueryRep::Dense(q)).collect()
                }
                IndexKind::Hamming => w.query_codes.iter().map(QueryRep::Code).collect(),
            };
            let t = Instant::now();
            for q in &queries {
                std::hint::black_box(backend.search(*q, k).expect("matching widths"));
            }
            let per_query = t.elapsed().as_secs_f64() / n_query as f64;
            println!("    {name:<16} {:>9.3} ms/query", per_query * 1e3);
        }
    }
    println!(
        "\nHamming-Hybrid stays nearly flat as the database grows because a\n\
         radius-2 lookup costs a fixed 1 + {bits} + {} probes regardless of size.",
        bits * (bits - 1) / 2
    );
}
