//! Search-strategy comparison: times Euclidean-BF, Hamming-BF, and the
//! Hamming-Hybrid table-lookup strategy on a growing database and shows
//! the pruning power of binary codes (the Section V-E experiment as a
//! runnable demo).
//!
//! ```text
//! cargo run --release --example hamming_search
//! ```

use std::time::Instant;
use traj_bench::clustered_workload;
use traj_index::{euclidean_top_k, hamming_top_k, HammingTable};

fn main() {
    let bits = 32;
    let k = 10;
    let n_query = 100;
    println!("strategy timing, {bits}-bit codes, top-{k}, {n_query} queries\n");
    println!(
        "{:>8}  {:>16}  {:>14}  {:>18}  {:>12}",
        "db size", "Euclidean-BF", "Hamming-BF", "Hamming-Hybrid", "via lookup"
    );
    for n_db in [10_000usize, 50_000, 100_000] {
        let w = clustered_workload(n_db, n_query, bits, n_db / 400, 2, 11);
        let t0 = Instant::now();
        for q in &w.query_embeddings {
            std::hint::black_box(euclidean_top_k(&w.db_embeddings, q, k));
        }
        let euclid = t0.elapsed().as_secs_f64() / n_query as f64;

        let t1 = Instant::now();
        for q in &w.query_codes {
            std::hint::black_box(hamming_top_k(&w.db_codes, q, k));
        }
        let hamming = t1.elapsed().as_secs_f64() / n_query as f64;

        let table = HammingTable::build(w.db_codes.clone());
        // count how many queries resolve purely by radius-2 table lookup
        let resolved = w
            .query_codes
            .iter()
            .filter(|q| {
                table.lookup_within(q, 2).expect("radius 2, matching widths").iter().map(|(_, v)| v.len()).sum::<usize>() >= k
            })
            .count();
        let t2 = Instant::now();
        for q in &w.query_codes {
            std::hint::black_box(table.hybrid_top_k(q, k).expect("matching widths"));
        }
        let hybrid = t2.elapsed().as_secs_f64() / n_query as f64;

        println!(
            "{:>8}  {:>13.3} ms  {:>11.3} ms  {:>15.3} ms  {:>10}%",
            n_db,
            euclid * 1e3,
            hamming * 1e3,
            hybrid * 1e3,
            resolved * 100 / n_query
        );
    }
    println!(
        "\nHamming-Hybrid stays nearly flat as the database grows because a\n\
         radius-2 lookup costs a fixed 1 + {bits} + {} probes regardless of size.",
        bits * (bits - 1) / 2
    );
}
