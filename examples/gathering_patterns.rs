//! Gathering-pattern discovery: the paper's introduction cites Zheng et
//! al.'s gathering-pattern mining, which needs groups of mutually
//! similar trajectories. With Traj2Hash, the binary codes make this a
//! bucket scan: trajectories whose codes collide (or lie within a small
//! Hamming radius) are candidate gatherings, verified with the exact
//! measure only inside each small candidate group.
//!
//! ```text
//! cargo run --release --example gathering_patterns
//! ```

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_index::BinaryCode;
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

fn main() {
    let sizes = SplitSizes { seeds: 60, validation: 80, corpus: 800, query: 10, database: 500 };
    let dataset = Dataset::generate(CityParams::porto_like(), sizes, 13);

    let mcfg = ModelConfig { dim: 32, blocks: 1, heads: 2, grid_dim: 32, ..ModelConfig::default() };
    let tcfg = TrainConfig {
        epochs: 6,
        coarse_cell_m: 2000.0,
        triplets_per_epoch: 256,
        ..TrainConfig::default()
    };
    let measure = Measure::Frechet;
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 13);
    let mut model = Traj2Hash::new(mcfg, &ctx, 13);
    let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
    train(&mut model, &data, &tcfg).expect("training failed");
    println!("model trained; hashing {} trips", dataset.database.len());

    // Density-cluster the database directly in Hamming space: DBSCAN
    // with the multi-index hash answering the eps-neighbourhood queries.
    let codes: Vec<BinaryCode> = dataset
        .database
        .iter()
        .map(|t| BinaryCode::from_signs(&model.hash_signs(t)))
        .collect();
    let clustering = traj_index::dbscan_hamming(&codes, 2, 3, 4);
    let mut gatherings = clustering.clusters();
    gatherings.retain(|g| g.len() >= 3);
    gatherings.sort_by_key(|g| std::cmp::Reverse(g.len()));
    println!(
        "DBSCAN(eps=2 bits, minPts=3) found {} gatherings + {} noise trips; verifying with exact {}",
        gatherings.len(),
        clustering.noise_count(),
        measure.name()
    );

    // Verify candidates with the exact measure — only O(group^2) exact
    // computations instead of O(database^2).
    let mut exact_calls = 0usize;
    for (gi, group) in gatherings.iter().take(5).enumerate() {
        let mut max_d = 0.0f64;
        let mut sum_d = 0.0f64;
        let mut pairs = 0usize;
        for i in 0..group.len() {
            for j in (i + 1)..group.len() {
                let d = measure.distance(&dataset.database[group[i]], &dataset.database[group[j]]);
                exact_calls += 1;
                max_d = max_d.max(d);
                sum_d += d;
                pairs += 1;
            }
        }
        println!(
            "  gathering #{gi}: {} trips, mean pairwise {:.0} m, max {:.0} m",
            group.len(),
            sum_d / pairs as f64,
            max_d
        );
    }
    let brute_force_pairs = dataset.database.len() * (dataset.database.len() - 1) / 2;
    println!(
        "\nexact distance calls: {exact_calls} (a brute-force gathering scan would need {brute_force_pairs})"
    );
}
