//! A tour of the exact distance measures and the structural properties
//! the paper builds on: the endpoint lower bound (Lemma 1), reverse
//! symmetry (Lemma 2), and the cDTW band trade-off.
//!
//! ```text
//! cargo run --release --example distance_playground
//! ```

use traj_data::{CityGenerator, CityParams, Point, Trajectory};
use traj_dist::{cdtw, dtw, endpoint_bound, erp, frechet, hausdorff, Measure};

fn main() {
    // Two hand-crafted commutes: same road, shifted in time.
    let a = Trajectory::from_xy(&(0..12).map(|i| (100.0 * i as f64, 10.0)).collect::<Vec<_>>());
    let b = Trajectory::from_xy(&(0..12).map(|i| (100.0 * i as f64 + 150.0, -10.0)).collect::<Vec<_>>());

    println!("two parallel 1.1 km commutes, 150 m phase shift, 20 m lateral gap:");
    println!("  DTW       = {:>8.1} m (sums per-step gaps)", dtw(&a, &b));
    println!("  Frechet   = {:>8.1} m (bottleneck leash length)", frechet(&a, &b));
    println!("  Hausdorff = {:>8.1} m (set distance, ignores order)", hausdorff(&a, &b));
    println!("  ERP       = {:>8.1} m (edit distance w/ real penalty)", erp(&a, &b, Point::new(0.0, 0.0)));

    // Lemma 1: the endpoint distance lower-bounds DTW and Frechet.
    println!("\nLemma 1 (endpoint lower bound):");
    let lb = endpoint_bound(&a, &b);
    println!("  endpoint bound {lb:.1} <= Frechet {:.1} <= DTW {:.1}", frechet(&a, &b), dtw(&a, &b));

    // Lemma 2: reverse symmetry.
    println!("\nLemma 2 (reverse symmetry): D(T1, T2) == D(T1^r, T2^r)");
    for m in Measure::paper_suite() {
        let fwd = m.distance(&a, &b);
        let rev = m.distance(&a.reversed(), &b.reversed());
        println!("  {:<9}: {:.3} vs {:.3}", m.name(), fwd, rev);
    }

    // cDTW band sweep on realistic trips.
    let mut generator = CityGenerator::new(CityParams::porto_like(), 3);
    let t1 = generator.generate_one();
    let t2 = generator.generate_one();
    println!(
        "\ncDTW band sweep on two synthetic taxi trips ({} and {} points):",
        t1.len(),
        t2.len()
    );
    let exact = dtw(&t1, &t2);
    for band in [2usize, 4, 8, 16, usize::MAX] {
        let c = cdtw(&t1, &t2, band);
        let label = if band == usize::MAX { "inf".to_string() } else { band.to_string() };
        println!(
            "  band {label:>4}: cDTW = {c:>12.1}  (overestimates exact DTW {exact:.1} by {:.2}%)",
            100.0 * (c - exact) / exact
        );
    }
}
