//! Quickstart: train a small Traj2Hash model, stand up the serving
//! engine, and search in both Euclidean and Hamming space — then keep
//! the corpus live with inserts/removals and survive a restart via a
//! snapshot.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::time::Instant;
use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_engine::{EngineConfig, ShardConfig, ShardedEngine, Strategy, Traj2HashEngine};
use traj_eval::{ground_truth_top_k, hr_at_k};
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

fn main() {
    // 0. Telemetry is opt-in: with OBS_JSONL=path in the environment,
    //    every epoch span, query-latency histogram, and engine event
    //    below is exported as JSON lines (see DESIGN.md §11).
    if std::env::var_os("OBS_JSONL").is_some() {
        traj_obs::init_from_env().expect("OBS_JSONL path must be writable");
    }

    // 1. A deterministic synthetic city (stand-in for the Porto taxi
    //    corpus; see DESIGN.md).
    let sizes = SplitSizes { seeds: 60, validation: 80, corpus: 800, query: 20, database: 400 };
    let dataset = Dataset::generate(CityParams::porto_like(), sizes, 42);
    println!(
        "dataset: {} seeds / {} validation / {} corpus / {} queries / {} database",
        dataset.seeds.len(),
        dataset.validation.len(),
        dataset.corpus.len(),
        dataset.query.len(),
        dataset.database.len()
    );

    // 2. Prepare the model context (normalization stats, fine grid, NCE
    //    pre-trained decomposed grid embeddings) and train.
    let mcfg = ModelConfig { dim: 32, blocks: 1, heads: 2, grid_dim: 32, ..ModelConfig::default() };
    let tcfg = TrainConfig {
        epochs: 6,
        coarse_cell_m: 2000.0,
        triplets_per_epoch: 256,
        ..TrainConfig::default()
    };
    let measure = Measure::Frechet;
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 42);
    println!("grid pre-training took {:.2}s", ctx.pretrain_secs);
    let mut model = Traj2Hash::new(mcfg, &ctx, 42);
    let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
    println!("supervision ready: {} generated triplets", data.triplets.len());
    let report = train(&mut model, &data, &tcfg).expect("training failed");
    println!(
        "trained {} epochs in {:.1}s; validation HR@10 per epoch: {:?}",
        report.epoch_losses.len(),
        report.seconds,
        report.val_hr10.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // 3. Stand up the serving engine: one call encodes the database,
    //    packs the binary codes, and builds every index. The trainer
    //    keeps the original model; the engine owns a byte-identical
    //    replica.
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .expect("engine build");
    let stats = engine.stats();
    println!(
        "\nengine: {} trajectories indexed, generation {}, degraded: {}",
        stats.live, stats.generation, stats.degraded
    );

    // 4. One `query` call per strategy — no per-strategy plumbing.
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 10)
        .expect("ground truth computation failed");
    println!("top-10 search vs exact {measure:?}:");
    for strategy in Strategy::ALL {
        let mut hr = 0.0;
        for (qi, q) in dataset.query.iter().enumerate() {
            let ids: Vec<usize> = engine
                .query(q, 10, strategy)
                .expect("query")
                .iter()
                .map(|h| h.id as usize)
                .collect();
            hr += hr_at_k(&ids, &truth[qi], 10);
        }
        println!("  {:<16} HR@10 = {:.3}", strategy.name(), hr / dataset.query.len() as f64);
    }

    // 5. Show one query's results (ids on a fresh build are database
    //    positions, so we can pull the exact distance for context).
    let q = &dataset.query[0];
    println!("\nquery 0 ({} points): nearest database trajectories:", q.len());
    for hit in engine.query(q, 3, Strategy::EuclideanBf).expect("query") {
        let exact = measure.distance(q, engine.get(hit.id).expect("live id"));
        println!(
            "  #{:<4} embedding distance {:.3}, exact Frechet {:.1} m",
            hit.id, hit.distance, exact
        );
    }

    // 6. The corpus is live: new trajectories are searchable the moment
    //    `insert` returns, removals vanish immediately, and the engine
    //    compacts itself past the configured thresholds.
    let novel = dataset.corpus[0].clone();
    let id = engine.insert(novel.clone());
    let top = engine.query(&novel, 1, Strategy::EuclideanBf).expect("query");
    println!(
        "\ninserted trajectory got id {id}; self-query returns id {} at distance {:.1}",
        top[0].id, top[0].distance
    );
    engine.remove(id).expect("id is live");
    println!("removed it again; live corpus back to {}", engine.len());

    // 7. Snapshots make restarts instant: model parameters, corpus,
    //    embeddings, and codes all reload without re-encoding anything.
    let path = std::env::temp_dir().join("traj2hash-quickstart.snap");
    engine.save_snapshot(&path).expect("save snapshot");
    let t = Instant::now();
    let restored = Traj2HashEngine::load_snapshot(&path).expect("load snapshot");
    let reload_ms = t.elapsed().as_secs_f64() * 1e3;
    let same = restored.query(q, 3, Strategy::EuclideanBf).expect("query")
        == engine.query(q, 3, Strategy::EuclideanBf).expect("query");
    println!(
        "snapshot reload: {} trajectories in {reload_ms:.1} ms, answers identical: {same}",
        restored.len()
    );
    std::fs::remove_file(&path).ok();

    // 8. Scale-out serving: the same corpus behind the sharded engine.
    //    The corpus partitions across shards by stable id; each shard
    //    publishes immutable generations behind an Arc swap, so any
    //    number of reader threads query lock-free (pin → search →
    //    drop) while the writer inserts, removes, and compacts.
    //    Answers are bit-identical to the single-shard engine above,
    //    and `query_many` amortizes query encoding over a batch.
    let sharded = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 4, fan_out_threads: 0 },
    )
    .expect("sharded engine build");
    let batch: Vec<_> = dataset.query.iter().take(4).cloned().collect();
    let batched = sharded.query_many(&batch, 3, Strategy::Hybrid).expect("batched query");
    let agree = batch
        .iter()
        .zip(&batched)
        .all(|(q, hits)| *hits == engine.query(q, 3, Strategy::Hybrid).expect("query"));
    let from_reader = std::thread::scope(|scope| {
        let spec = sharded.reader(); // Send; the model replica is built on the reader thread
        scope
            .spawn(move || {
                let mut reader = spec.into_reader();
                reader.query(&batch[0], 3, Strategy::Hybrid).expect("reader query")
            })
            .join()
            .expect("reader thread")
    });
    println!(
        "sharded engine: {} shards over {} trajectories; batched answers match \
         the single-shard engine: {}; reader-thread answer matches: {}",
        sharded.shard_config().shards,
        sharded.len(),
        agree,
        from_reader == batched[0],
    );

    // Write the final counter/gauge/histogram snapshots to the JSONL
    // export (inert when no recorder was installed).
    traj_obs::flush();
}
