//! Quickstart: train a small Traj2Hash model and run top-k similar
//! trajectory search in both Euclidean and Hamming space.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_eval::{ground_truth_top_k, hr_at_k, pack_codes};
use traj_index::{euclidean_top_k, HammingTable};
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

fn main() {
    // 1. A deterministic synthetic city (stand-in for the Porto taxi
    //    corpus; see DESIGN.md).
    let sizes = SplitSizes { seeds: 60, validation: 80, corpus: 800, query: 20, database: 400 };
    let dataset = Dataset::generate(CityParams::porto_like(), sizes, 42);
    println!(
        "dataset: {} seeds / {} validation / {} corpus / {} queries / {} database",
        dataset.seeds.len(),
        dataset.validation.len(),
        dataset.corpus.len(),
        dataset.query.len(),
        dataset.database.len()
    );

    // 2. Prepare the model context (normalization stats, fine grid, NCE
    //    pre-trained decomposed grid embeddings) and train.
    let mcfg = ModelConfig { dim: 32, blocks: 1, heads: 2, grid_dim: 32, ..ModelConfig::default() };
    let tcfg = TrainConfig {
        epochs: 6,
        coarse_cell_m: 2000.0,
        triplets_per_epoch: 256,
        ..TrainConfig::default()
    };
    let measure = Measure::Frechet;
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 42);
    println!("grid pre-training took {:.2}s", ctx.pretrain_secs);
    let mut model = Traj2Hash::new(mcfg, &ctx, 42);
    let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
    println!("supervision ready: {} generated triplets", data.triplets.len());
    let report = train(&mut model, &data, &tcfg).expect("training failed");
    println!(
        "trained {} epochs in {:.1}s; validation HR@10 per epoch: {:?}",
        report.epoch_losses.len(),
        report.seconds,
        report.val_hr10.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>()
    );

    // 3. Encode the database once; queries are then answered in O(d).
    let db_embeddings = model.embed_all(&dataset.database);
    let db_codes = pack_codes(&model.hash_all(&dataset.database));
    let table = HammingTable::build(db_codes);

    // 4. Search and compare against the exact ground truth.
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 10);
    let mut hr_euclid = 0.0;
    let mut hr_hamming = 0.0;
    for (qi, q) in dataset.query.iter().enumerate() {
        let qe = model.embed(q).data().to_vec();
        let euclid: Vec<usize> =
            euclidean_top_k(&db_embeddings, &qe, 10).into_iter().map(|h| h.index).collect();
        let qc = traj_index::BinaryCode::from_signs(&model.hash_signs(q));
        let hamming: Vec<usize> =
            table.hybrid_top_k(&qc, 10).expect("query and database codes share a width").into_iter().map(|h| h.index).collect();
        hr_euclid += hr_at_k(&euclid, &truth[qi], 10);
        hr_hamming += hr_at_k(&hamming, &truth[qi], 10);
    }
    let n = dataset.query.len() as f64;
    println!("top-10 search vs exact {measure:?}: ");
    println!("  Euclidean space HR@10 = {:.3}", hr_euclid / n);
    println!("  Hamming space   HR@10 = {:.3}", hr_hamming / n);

    // 5. Show one query's results.
    let q = &dataset.query[0];
    let qe = model.embed(q).data().to_vec();
    let top = euclidean_top_k(&db_embeddings, &qe, 3);
    println!("\nquery 0 ({} points): nearest database trajectories:", q.len());
    for hit in top {
        let exact = measure.distance(q, &dataset.database[hit.index]);
        println!(
            "  #{:<4} embedding distance {:.3}, exact Frechet {:.1} m",
            hit.index, hit.distance, exact
        );
    }
}
