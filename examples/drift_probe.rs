//! Tuning probe for the soak loop's drift detector: runs a soak with
//! config knobs taken from env vars and prints the HR@10 evaluation
//! series (tick, drift t, HR@10, detector drop) plus the final report.
//! Useful for picking seeds/thresholds where detection fires cleanly.
//!
//! ```bash
//! MODEL=mid EPOCHS=5 TICKS=30 SEED=5 \
//!     cargo run --release --example drift_probe
//! ```

fn env_u64(k: &str, d: u64) -> u64 {
    std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
}

fn env_usize(k: &str, d: usize) -> usize {
    std::env::var(k).ok().and_then(|v| v.parse().ok()).unwrap_or(d)
}

fn main() {
    let wd = std::env::temp_dir().join(format!("drift-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wd);
    let mut cfg = traj_soak::SoakConfig::demo(wd.clone());
    cfg.ticks = env_u64("TICKS", 60);
    cfg.seed = env_u64("SEED", 77);
    cfg.window = env_usize("WINDOW", 160);
    cfg.eval_db = env_usize("EVAL_DB", 40);
    cfg.eval_queries = env_usize("EVAL_Q", 8);
    cfg.initial_epochs = env_usize("EPOCHS", 8);
    cfg.model = match std::env::var("MODEL").as_deref() {
        Ok("tiny") => traj2hash::ModelConfig::tiny(),
        // The e2e test's configuration: 32-bit codes (enough to rank
        // without massive ties) on a single cheap block.
        Ok("mid") => traj2hash::ModelConfig {
            dim: 32,
            blocks: 1,
            heads: 2,
            grid_dim: 16,
            fine_cell_m: 100.0,
            ..traj2hash::ModelConfig::small()
        },
        _ => traj2hash::ModelConfig::small(),
    };
    let drill2 = env_u64("DRILL2", 44);
    if drill2 != 44 {
        cfg.degrade_drills = vec![18, drill2];
    }

    let t0 = std::time::Instant::now();
    let mut runner = traj_soak::SoakRunner::new(cfg).expect("soak bootstrap");
    let boot = t0.elapsed().as_secs_f64();
    let report = runner.run().expect("soak run");
    for t in &report.tick_log {
        if let Some(h) = t.hr10 {
            println!(
                "tick={} t={:.2} hr={:.3} drop={:.3}",
                t.tick, t.drift_t, h, t.relative_drop
            );
        }
    }
    print!("{}", report.summary());
    println!("boot={boot:.1}s total={:.1}s", t0.elapsed().as_secs_f64());
    let _ = std::fs::remove_dir_all(&wd);
}
