//! Entity linking: the paper's introduction motivates similar-trajectory
//! search with "discovering the identity relation via linking the same
//! object in different datasets based on the similarity of their
//! movement traces" (Jin et al.). This example simulates exactly that:
//! a second sensor re-observes some trips with a lower sampling rate and
//! its own GPS noise; we link each observation back to its source trip
//! with Traj2Hash embeddings and hash codes.
//!
//! ```text
//! cargo run --release --example entity_linking
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use traj_data::{augment, CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_eval::pack_codes;
use traj_index::{euclidean_top_k, hamming_top_k};
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

fn main() {
    let sizes = SplitSizes { seeds: 60, validation: 80, corpus: 800, query: 20, database: 300 };
    let dataset = Dataset::generate(CityParams::chengdu_like(), sizes, 7);

    let mcfg = ModelConfig { dim: 32, blocks: 1, heads: 2, grid_dim: 32, ..ModelConfig::default() };
    let tcfg = TrainConfig {
        epochs: 6,
        coarse_cell_m: 2000.0,
        triplets_per_epoch: 256,
        ..TrainConfig::default()
    };
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 7);
    let mut model = Traj2Hash::new(mcfg, &ctx, 7);
    let data = TrainData::prepare(&dataset, Measure::Dtw, &tcfg).expect("failed to prepare training supervision");
    let report = train(&mut model, &data, &tcfg).expect("training failed");
    println!("model trained in {:.1}s", report.seconds);

    // Second dataset: every 3rd database trip re-observed by a different
    // sensor (40% of points dropped, 15 m noise).
    let mut rng = StdRng::seed_from_u64(99);
    let observations: Vec<(usize, traj_data::Trajectory)> = dataset
        .database
        .iter()
        .enumerate()
        .step_by(3)
        .map(|(i, t)| (i, augment::observe(t, &mut rng, 0.4, 15.0)))
        .collect();
    println!(
        "linking {} re-observations against {} database trips",
        observations.len(),
        dataset.database.len()
    );

    let db_embeddings = model.embed_all(&dataset.database);
    let db_codes = pack_codes(&model.hash_all(&dataset.database));

    let mut correct_euclid = 0usize;
    let mut correct_hamming_5 = 0usize;
    for (source, obs) in &observations {
        let e = model.embed(obs).data().to_vec();
        let top = euclidean_top_k(&db_embeddings, &e, 1);
        if top[0].index == *source {
            correct_euclid += 1;
        }
        let code = traj_index::BinaryCode::from_signs(&model.hash_signs(obs));
        let top5 = hamming_top_k(&db_codes, &code, 5);
        if top5.iter().any(|h| h.index == *source) {
            correct_hamming_5 += 1;
        }
    }
    let n = observations.len() as f64;
    println!(
        "linked via Euclidean embeddings (top-1): {:.1}%",
        100.0 * correct_euclid as f64 / n
    );
    println!(
        "linked via Hamming codes (top-5 shortlist): {:.1}%",
        100.0 * correct_hamming_5 as f64 / n
    );
    println!("(a random linker would score {:.2}%)", 100.0 / dataset.database.len() as f64);
}
