#!/usr/bin/env python3
"""Rebuilds partial Table I/II text tables from a table12 progress log
(used when a run is cut short)."""
import re, sys

log = sys.argv[1] if len(sys.argv) > 1 else "results/table12.log"
rows_e, rows_h = [], []
pat = re.compile(
    r"\[table12\] (\S+) (\S+) (\S+):(?: euclid HR@10=(\S+) HR@50=(\S+) R10@50=(\S+) \|)?"
    r" hamming HR@10=(\S+) HR@50=(\S+) R10@50=(\S+)")
for line in open(log):
    m = pat.search(line)
    if not m:
        continue
    city, method, measure = m.group(1), m.group(2), m.group(3)
    if m.group(4):
        rows_e.append((city, method, measure, m.group(4), m.group(5), m.group(6)))
    rows_h.append((city, method, measure, m.group(7), m.group(8), m.group(9)))

def render(rows):
    head = ("Dataset", "Method", "Measure", "HR@10", "HR@50", "R10@50")
    w = [max(len(str(r[i])) for r in rows + [head]) for i in range(6)]
    out = ["| " + " | ".join(h.ljust(w[i]) for i, h in enumerate(head)) + " |"]
    out.append("|" + "|".join("-" * (w[i] + 2) for i in range(6)) + "|")
    for r in rows:
        out.append("| " + " | ".join(str(r[i]).ljust(w[i]) for i in range(6)) + " |")
    return "\n".join(out) + "\n"

open("results/table12.table1.txt", "w").write(render(rows_e))
open("results/table12.table2.txt", "w").write(render(rows_h))
print(f"reconstructed {len(rows_e)} euclidean rows, {len(rows_h)} hamming rows")
