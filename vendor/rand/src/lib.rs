//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand` API it actually
//! uses: a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), the [`SeedableRng`] constructor, the core [`Rng`]
//! trait, and the [`RngExt`] extension providing `random::<T>()` and
//! `random_range(..)`.
//!
//! Determinism is part of the contract: every experiment in the repo
//! seeds its generator explicitly, and checkpoint/resume tests rely on
//! a given seed producing the same stream on every platform.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types constructible from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard deterministic generator: xoshiro256++ with its four
    /// state words derived from the seed by SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Values samplable uniformly from the full bit stream (the `Standard`
/// distribution of real `rand`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges samplable uniformly; implemented for half-open and inclusive
/// ranges of the primitive numeric types the workspace draws from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    /// Panics on an empty range, mirroring real `rand`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as StandardSample>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as StandardSample>::sample(rng);
                start + (end - start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniform draw of `T` (bool, integers, or a float in `[0, 1)`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0..=4u64);
            assert!(w <= 4);
            let f = rng.random_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn range_draws_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_of_unit_draws_is_centered() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
