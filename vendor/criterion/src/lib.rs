//! Offline stand-in for the `criterion` crate.
//!
//! Implements just enough of criterion's API for the workspace's
//! `harness = false` benchmarks to compile and produce useful numbers
//! offline: [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`Bencher::iter`], the [`criterion_group!`]/[`criterion_main!`]
//! macros, and [`black_box`]. Measurement is a simple
//! median-of-samples wall-clock loop — adequate for the relative
//! comparisons the repo's figures make, with none of criterion's
//! statistical machinery.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for sampling one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(name);
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for sampling one benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size, self.warm_up_time, self.measurement_time);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median_ns: Option<f64>,
}

impl Bencher {
    fn new(sample_size: usize, warm_up_time: Duration, measurement_time: Duration) -> Self {
        Bencher { sample_size, warm_up_time, measurement_time, median_ns: None }
    }

    /// Measures the median wall-clock time of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates a per-iteration cost so each sample can
        // batch enough iterations to dwarf timer resolution.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_ns = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget_ns / est_ns.max(1.0)).floor() as u64).clamp(1, 1_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.median_ns = Some(samples[samples.len() / 2]);
    }

    fn report(&self, label: &str) {
        match self.median_ns {
            Some(ns) => println!("{label:<48} median {}", format_ns(ns)),
            None => println!("{label:<48} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions. Supports both the simple
/// `criterion_group!(name, fn1, fn2)` form and the configured
/// `criterion_group! { name = ..; config = ..; targets = .. }` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = tiny();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = tiny();
        let mut group = c.benchmark_group("g");
        group.sample_size(2).measurement_time(Duration::from_millis(4));
        for n in [10u64, 20] {
            group.bench_with_input(BenchmarkId::new("sum", n), &n, |b, &n| {
                b.iter(|| (0..n).sum::<u64>())
            });
        }
        group.finish();
    }
}
