//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), range and tuple strategies, `collection::vec`,
//! `bool::ANY`, `Strategy::prop_map`, `Just`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Each test case draws inputs from a deterministically seeded
//! [`rand::rngs::StdRng`] (seed = case index mixed with a fixed
//! constant), so failures are reproducible run-to-run. Unlike real
//! proptest there is no shrinking: a failing case reports the case
//! index and panics with the assertion message.

#![warn(missing_docs)]

/// Re-exports used by the macro expansions; not public API.
pub mod __rt {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Marker returned by `prop_assume!` rejections.
    pub struct CaseRejected;

    /// Per-case RNG: distinct, deterministic stream per case index.
    pub fn case_rng(case: u32) -> StdRng {
        StdRng::seed_from_u64(0x5EED_BA5E_0000_0000u64 ^ (case as u64).wrapping_mul(0x9E37_79B9))
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Mirror of proptest's config struct; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

/// Strategies: composable random-value generators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange, StandardSample};
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then runs the strategy `f` builds from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: Copy + 'static> Strategy for Range<T>
    where
        Range<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: Copy + 'static> Strategy for RangeInclusive<T>
    where
        RangeInclusive<T>: SampleRange<T> + Clone,
    {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Draws any value of a [`StandardSample`] type (used by
    /// `proptest::bool::ANY`).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: StandardSample> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut StdRng) -> T {
            rng.random::<T>()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use std::marker::PhantomData;

    /// Uniformly random booleans.
    pub const ANY: crate::strategy::Any<bool> = crate::strategy::Any(PhantomData);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: a fixed size or a half-open range.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn draw_len(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn draw_len(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn draw_len(&self, rng: &mut StdRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// A vector whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, size: L) -> VecStrategy<S, L> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.draw_len(rng);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The names `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Each function runs `config.cases` times with
/// inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::__rt::case_rng(__case);
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                // The closure gives `prop_assume!` a scope to early-return
                // from; invoking it in place is the point.
                #[allow(clippy::redundant_closure_call)]
                let __outcome: ::std::result::Result<(), $crate::__rt::CaseRejected> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                let _ = __outcome;
            }
        }
    )*};
}

/// Asserts a condition inside a property, reporting the message on
/// failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::__rt::CaseRejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_length_range(
            v in crate::collection::vec(0u64..5, 2..9),
            w in crate::collection::vec(crate::bool::ANY, 4),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn prop_map_applies(d in (0.0f32..1.0).prop_map(|x| x * 2.0)) {
            prop_assert!((0.0..2.0).contains(&d));
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..10, 0usize..10)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn just_yields_value(x in Just(41usize)) {
            prop_assert_eq!(x, 41);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::__rt::case_rng(0);
        let mut b = crate::__rt::case_rng(0);
        use rand::RngExt;
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
