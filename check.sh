#!/usr/bin/env bash
# Full verification gate: release build, all tests, lint-clean.
# CI and pre-merge both run exactly this.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "All checks passed."
