#!/usr/bin/env bash
# Full verification gate: release build, all tests, lint-clean.
# CI and pre-merge both run exactly this.
#
#   ./check.sh          full gate
#   ./check.sh bench    perf smoke only: times the training hot paths and
#                       regenerates BENCH_pr2.json for commit-to-commit
#                       perf comparison
#   ./check.sh engine   serving-layer suite only: traj-engine unit tests
#                       plus the parity / incremental / snapshot
#                       integration suite
#   ./check.sh lint     static analysis only: builds and runs traj-lint
#                       over the workspace (extra args are forwarded,
#                       e.g. ./check.sh lint --fix-list)
set -euo pipefail
cd "$(dirname "$0")"

if [[ "${1:-}" == "bench" ]]; then
    echo "==> perf smoke (writes BENCH_pr2.json)"
    cargo run --release -p traj-bench --bin perf_smoke
    exit 0
fi

if [[ "${1:-}" == "engine" ]]; then
    echo "==> cargo test -p traj-engine"
    cargo test -q -p traj-engine
    echo "==> cargo test --test engine_parity"
    cargo test -q --test engine_parity
    echo "Engine checks passed."
    exit 0
fi

if [[ "${1:-}" == "lint" ]]; then
    shift
    echo "==> traj-lint"
    cargo run -q --release -p traj-lint -- --root . "$@"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> traj-lint (repo-specific rules, see DESIGN.md section 10)"
cargo run -q --release -p traj-lint -- --root .

echo "All checks passed."
