#!/usr/bin/env bash
# Full verification gate: release build, all tests, lint-clean.
# CI and pre-merge both run exactly this.
#
#   ./check.sh          full gate
#   ./check.sh bench    perf smoke only: times the training hot paths,
#                       regenerates BENCH_pr2.json for commit-to-commit
#                       perf comparison, and enforces the <1% disabled-
#                       recorder overhead gate (writes BENCH_pr5.json
#                       and prints the obs summary)
#   ./check.sh engine   serving-layer suite only: traj-engine unit tests
#                       plus the parity / incremental / snapshot
#                       integration suite
#   ./check.sh shard    sharded-serving suite only: the sharded==unsharded
#                       parity proptests (shard counts 1..8, random
#                       insert/remove interleavings, all five strategies)
#                       and the multi-reader concurrency test (N readers
#                       pinning generations under writer churn)
#   ./check.sh obs      observability suite only: traj-obs unit tests,
#                       the telemetry integration tests, and the
#                       instrumented perf smoke with a JSONL export
#                       round-trip (overhead gate included)
#   ./check.sh ops      ops-surface suite only: the per-query trace
#                       parity proptests (sharded trace totals reconcile
#                       with the unsharded facade; disabled-mode output
#                       byte-identical) and the end-to-end HTTP scrape
#                       of /metrics, /healthz, and /traces against a
#                       live sharded engine
#   ./check.sh lint     static analysis only: builds and runs traj-lint
#                       over the workspace (extra args are forwarded,
#                       e.g. ./check.sh lint --fix-list)
#   ./check.sh prune    pruned-driver suite only: the pruned==dense
#                       parity proptests (every measure, random corpora,
#                       thread counts) plus a 10K-database gt_bench
#                       smoke run that verifies recall 1.0 and reports
#                       the pruning rate
#   ./check.sh soak     bounded deterministic soak: 60 ticks of the
#                       always-on serving loop with porto→chengdu
#                       drift, injected write faults, and degrade
#                       drills; exports and self-validates the JSONL
#                       telemetry stream (target/soak.jsonl)
#   ./check.sh sanitize dynamic race/UB detection: the publish-cell unit
#                       tests under Miri and the shard concurrency suite
#                       under ThreadSanitizer (with -Zbuild-std so std's
#                       own atomics are instrumented). Each layer that
#                       the installed toolchain cannot support is
#                       SKIPPED WITH A LOUD NOTICE — never silently.
set -euo pipefail
cd "$(dirname "$0")"

run_sanitize() {
    echo "==> sanitize: Miri (publish-cell unit tests) + ThreadSanitizer (shard concurrency)"
    local ran=0 skipped=0

    if ! rustup run nightly rustc --version >/dev/null 2>&1; then
        echo "NOTICE: sanitize SKIPPED entirely — no nightly toolchain installed."
        echo "NOTICE: install with: rustup toolchain install nightly --component miri rust-src"
        return 0
    fi
    local host
    host="$(rustup run nightly rustc -vV | awk '/^host:/{print $2}')"

    if cargo +nightly miri --version >/dev/null 2>&1; then
        echo "==> cargo +nightly miri test -p traj-engine cell:: loomlet::"
        # Miri interprets the interpreter-friendly unit layer: the
        # PublishCell pin/publish/poison tests and the loomlet
        # enumerator itself.
        cargo +nightly miri test -p traj-engine cell:: loomlet::
        ran=$((ran + 1))
    else
        echo "NOTICE: Miri layer SKIPPED — cargo-miri is not installed for nightly."
        echo "NOTICE: install with: rustup component add miri --toolchain nightly"
        skipped=$((skipped + 1))
    fi

    local src_root
    src_root="$(rustup run nightly rustc --print sysroot)/lib/rustlib/src/rust/library"
    if [[ -d "$src_root" ]]; then
        echo "==> ThreadSanitizer on the shard concurrency suite (std rebuilt instrumented)"
        RUSTFLAGS="-Zsanitizer=thread" \
            cargo +nightly test -Zbuild-std --target "$host" -q --test shard_concurrency
        ran=$((ran + 1))
    else
        # Without build-std the prebuilt std is uninstrumented and TSan
        # reports false races on Arc/RwLock internals, so a raw run
        # would be noise, not signal.
        echo "NOTICE: ThreadSanitizer layer SKIPPED — rust-src is not installed for nightly,"
        echo "NOTICE: and TSan needs -Zbuild-std to instrument std's own synchronization."
        echo "NOTICE: install with: rustup component add rust-src --toolchain nightly"
        skipped=$((skipped + 1))
    fi

    if [[ "$ran" -eq 0 ]]; then
        echo "NOTICE: sanitize ran 0 of 2 layers — toolchain support missing (see notices above)."
        echo "NOTICE: the deterministic fallback still runs in the main gate: the loomlet"
        echo "NOTICE: suite model-checks every publish-protocol interleaving without sanitizers."
    else
        echo "sanitize: $ran of 2 layers ran, $skipped skipped."
    fi
}

if [[ "${1:-}" == "bench" ]]; then
    echo "==> perf smoke (writes BENCH_pr2.json and BENCH_pr5.json, gates obs overhead)"
    cargo run --release -p traj-bench --bin perf_smoke
    exit 0
fi

if [[ "${1:-}" == "obs" ]]; then
    echo "==> cargo test -p traj-obs"
    cargo test -q -p traj-obs
    echo "==> cargo test --test obs_telemetry"
    cargo test -q --test obs_telemetry
    echo "==> instrumented perf smoke with JSONL export (overhead gate + round-trip)"
    OBS_JSONL=target/obs_smoke.jsonl cargo run --release -p traj-bench --bin perf_smoke
    echo "Observability checks passed (JSONL at target/obs_smoke.jsonl)."
    exit 0
fi

if [[ "${1:-}" == "engine" ]]; then
    echo "==> cargo test -p traj-engine"
    cargo test -q -p traj-engine
    echo "==> cargo test --test engine_parity"
    cargo test -q --test engine_parity
    echo "Engine checks passed."
    exit 0
fi

if [[ "${1:-}" == "shard" ]]; then
    echo "==> cargo test --test shard_parity"
    cargo test -q --test shard_parity
    echo "==> cargo test --test shard_concurrency"
    cargo test -q --test shard_concurrency
    echo "Sharded-serving checks passed."
    exit 0
fi

if [[ "${1:-}" == "soak" ]]; then
    echo "==> bounded deterministic soak (fixed seed, faults injected, JSONL self-validated)"
    rm -rf target/soak-work
    OBS_JSONL=target/soak.jsonl cargo run -q --release -p traj-soak -- \
        --ticks 60 --seed 77 --workdir target/soak-work
    echo "Soak check passed (JSONL at target/soak.jsonl)."
    exit 0
fi

if [[ "${1:-}" == "prune" ]]; then
    echo "==> cargo test --test prune_parity (pruned == dense, property-based)"
    cargo test -q --test prune_parity
    echo "==> gt_bench --smoke (10K database; asserts recall 1.0, reports pruning rate)"
    cargo run -q --release -p traj-bench --bin gt_bench -- --smoke
    echo "Pruned-driver checks passed."
    exit 0
fi

if [[ "${1:-}" == "ops" ]]; then
    echo "==> cargo test --test trace_parity (traces agree with the engines they observe)"
    cargo test -q --test trace_parity
    echo "==> cargo test --test ops_surface (HTTP scrape: /metrics exposition, /healthz, /traces)"
    cargo test -q --test ops_surface
    echo "Ops-surface checks passed."
    exit 0
fi

if [[ "${1:-}" == "sanitize" ]]; then
    run_sanitize
    exit 0
fi

if [[ "${1:-}" == "lint" ]]; then
    shift
    echo "==> traj-lint"
    cargo run -q --release -p traj-lint -- --root . "$@"
    exit 0
fi

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> sharded-serving parity + concurrency (also covered by cargo test; rerun as a named gate)"
cargo test -q --test shard_parity --test shard_concurrency

echo "==> ops surface: trace parity + HTTP scrape (also covered by cargo test; rerun as a named gate)"
cargo test -q --test trace_parity --test ops_surface

echo "==> pruned-driver parity + gt_bench smoke (also covered by cargo test; rerun as a named gate)"
cargo test -q --test prune_parity
cargo run -q --release -p traj-bench --bin gt_bench -- --smoke

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> traj-lint (repo-specific rules, see DESIGN.md section 10)"
cargo run -q --release -p traj-lint -- --root .

run_sanitize

echo "All checks passed."
