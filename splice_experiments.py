#!/usr/bin/env python3
"""Splices measured results from results/ into EXPERIMENTS.md at the
<!-- MARKER --> placeholders. Idempotent: reads the current file, replaces
each marker (or previously spliced block) with a fenced block of the
corresponding results file."""
import re
import sys

SPLICES = {
    "TABLE1": ["results/table12.table1.txt", "results/table12_tiny.table1.txt"],
    "TABLE2": ["results/table12.table2.txt", "results/table12_tiny.table2.txt"],
    "TABLE3": ["results/table3.txt"],
    "FIG4": ["results/fig4.txt"],
    "FIG5": ["results/fig5.txt"],
    "FIG6": ["results/fig6.txt"],
    "FIG7": ["results/fig7.txt"],
    "FIG8": ["results/fig8_dtw.txt", "results/fig8_frechet.txt"],
    "FIG9": ["results/fig9_dtw.txt", "results/fig9_frechet.txt"],
}


def block(paths):
    parts = []
    for p in paths:
        try:
            with open(p) as f:
                content = f.read().strip()
            parts.append(f"```text\n# {p}\n{content}\n```")
        except FileNotFoundError:
            parts.append(f"```text\n# {p}: not generated\n```")
    return "\n\n".join(parts)


def main():
    with open("EXPERIMENTS.md") as f:
        text = f.read()
    for key, paths in SPLICES.items():
        marker = f"<!-- {key} -->"
        replacement = marker + "\n\n" + block(paths)
        # replace marker plus any previously spliced fenced blocks after it
        pattern = re.escape(marker) + r"(\n\n(```text\n.*?\n```\n?\n?)+)?"
        text, n = re.subn(pattern, replacement + "\n", text, count=1, flags=re.S)
        if n == 0:
            print(f"warning: marker {marker} not found", file=sys.stderr)
    with open("EXPERIMENTS.md", "w") as f:
        f.write(text)
    print("spliced")


if __name__ == "__main__":
    main()
