//! # traj2hash-suite
//!
//! Meta-crate of the Traj2Hash reproduction (ICDE 2024, *Learning to
//! Hash for Trajectory Similarity Computation and Search*). It hosts the
//! runnable examples under `examples/` and the cross-crate integration
//! tests under `tests/`, and re-exports every member crate for
//! convenience:
//!
//! * [`tinynn`] — CPU tensor/autograd/layer substrate
//! * [`traj_data`] — trajectory types + synthetic city datasets
//! * [`traj_dist`] — exact distance measures and distance matrices
//! * [`traj_grid`] — grid machinery, decomposed embeddings, triplets
//! * [`traj2hash`] — the paper's model, losses, and trainer
//! * [`traj_baselines`] — the comparison methods
//! * [`traj_index`] — Euclidean/Hamming top-k search structures
//! * [`traj_eval`] — metrics and experiment tables
//! * [`traj_engine`] — the serving layer: `Traj2HashEngine` facade over
//!   encode → hash → index → search, with incremental updates + snapshots

pub use tinynn;
pub use traj2hash;
pub use traj_baselines;
pub use traj_bench;
pub use traj_data;
pub use traj_dist;
pub use traj_engine;
pub use traj_eval;
pub use traj_grid;
pub use traj_index;
