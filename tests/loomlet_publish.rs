//! Model-checking the publish protocol with the loomlet enumerator.
//!
//! [`traj_engine::loomlet::explore`] executes **every** interleaving of
//! a reader / writer / hot-swap schedule over real publish cells — a
//! [`ShardCell`] holding genuine [`ShardState`] generations and the
//! [`ModelBlueprint`] version cell — and checks the protocol's
//! invariants after every single step:
//!
//! * **monotone publish sequences** — the shard cell's `publish_seq`
//!   and the blueprint cell's version never move backwards, in the
//!   reader's observation order or anywhere else;
//! * **no torn views** — every pinned state passes the full structural
//!   consistency check, and two pins observing the same sequence are
//!   the *same* `Arc` (a sequence can never alias two states);
//! * **readers land on published generations** — every pinned sequence
//!   is either the initial value or one a writer's publish actually
//!   returned.
//!
//! The enumeration count is asserted against the exact multinomial so
//! the explored schedule space can never silently shrink.

use std::sync::Arc;

use traj_data::{CityParams, Dataset, SplitSizes, Trajectory};
use traj_engine::loomlet::{explore, interleaving_count, Step};
use traj_engine::shard::ShardState;
use traj_engine::sharded::ShardCell;
use traj_engine::{EngineConfig, ModelBlueprint, PublishCell};
use traj_index::BinaryCode;
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn world() -> (Dataset, Traj2Hash) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 60, query: 4, database: 24 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    (dataset, model)
}

/// One shard entry: id, trajectory, embedding, code.
fn entries(model: &Traj2Hash, trajs: &[Trajectory]) -> Vec<(u64, Trajectory, Vec<f32>, BinaryCode)> {
    model
        .embed_all(trajs)
        .into_iter()
        .zip(trajs)
        .enumerate()
        .map(|(i, (emb, t))| {
            let code = BinaryCode::from_floats(&emb);
            (i as u64, t.clone(), emb, code)
        })
        .collect()
}

fn build_state(rows: &[(u64, Trajectory, Vec<f32>, BinaryCode)], cfg: &EngineConfig) -> ShardState {
    ShardState::build(
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1.clone()).collect(),
        rows.iter().map(|r| r.2.clone()).collect(),
        rows.iter().map(|r| r.3.clone()).collect(),
        cfg,
    )
}

/// The shared state each schedule runs over: both publish cells plus
/// everything the reader and writers observed, so the invariant can
/// audit the full history after every step.
struct World {
    shard: ShardCell,
    model: PublishCell<ModelBlueprint>,
    /// The reader's pinned shard views, in pin order.
    pins: Vec<Arc<ShardState>>,
    /// The blueprint cell's version at each reader step.
    model_seqs: Vec<u64>,
    /// Sequences returned by shard publishes, in execution order.
    published: Vec<u64>,
    /// Versions returned by blueprint publishes, in execution order.
    model_published: Vec<u64>,
}

fn check_world(w: &World) -> Result<(), String> {
    // The currently published state is never torn.
    let cur = w.shard.pin();
    cur.check_consistent()?;

    // Shard publishes stamp strictly increasing sequences, and the
    // cell's live sequence is exactly the latest stamp.
    for pair in w.published.windows(2) {
        if pair[1] <= pair[0] {
            return Err(format!("publish stamped {} after {}", pair[1], pair[0]));
        }
    }
    let latest = w.published.last().copied().unwrap_or(0);
    if w.shard.seq() != latest {
        return Err(format!("cell seq {} but latest publish stamped {latest}", w.shard.seq()));
    }

    // Reader pins: consistent, monotone, and each one is a generation a
    // writer actually published (or the initial state, seq 0).
    for pin in &w.pins {
        pin.check_consistent()?;
        let seq = pin.publish_seq;
        if seq != 0 && !w.published.contains(&seq) {
            return Err(format!("reader pinned seq {seq}, which no writer published"));
        }
    }
    for pair in w.pins.windows(2) {
        if pair[1].publish_seq < pair[0].publish_seq {
            return Err(format!(
                "reader saw publish_seq move backwards: {} then {}",
                pair[0].publish_seq, pair[1].publish_seq
            ));
        }
        // Equal sequence must mean the identical published Arc — a
        // sequence aliasing two distinct states would be a torn swap.
        if pair[1].publish_seq == pair[0].publish_seq && !Arc::ptr_eq(&pair[0], &pair[1]) {
            return Err(format!(
                "two distinct states share publish_seq {}",
                pair[0].publish_seq
            ));
        }
    }

    // Blueprint versions: same story on the model cell.
    for pair in w.model_seqs.windows(2) {
        if pair[1] < pair[0] {
            return Err(format!(
                "reader saw blueprint version move backwards: {} then {}",
                pair[0], pair[1]
            ));
        }
    }
    for &v in &w.model_seqs {
        if v != 0 && !w.model_published.contains(&v) {
            return Err(format!("reader saw blueprint version {v}, which no swap published"));
        }
    }
    Ok(())
}

/// The tentpole schedule: 3 reader pins, 3 writer publishes
/// (insert → remove → rebuild), 2 hot-swap steps (blueprint publish →
/// shard republish-degraded) — 8!/(3!·3!·2!) = 560 interleavings,
/// every one executed over fresh cells, invariants checked after every
/// step.
#[test]
fn every_interleaving_of_reader_writer_swap_holds_the_invariants() {
    let (dataset, model) = world();
    let cfg = EngineConfig::default();
    let rows = entries(&model, &dataset.database[..6]);
    let base_rows: Vec<_> = rows[..5].to_vec();
    let (ins_id, ins_traj, ins_emb, ins_code) =
        (100u64, rows[5].1.clone(), rows[5].2.clone(), rows[5].3.clone());
    let model_b = {
        let ctx = ModelContext::prepare(&dataset.training_visible(), &ModelConfig::tiny(), 11);
        Traj2Hash::new(ModelConfig::tiny(), &ctx, 29)
    };

    let mk_state = {
        let base_rows = base_rows.clone();
        let cfg = cfg.clone();
        let mk_model = Traj2Hash::from_spec(&model.spec(), &model.params.clone_values());
        move || World {
            shard: ShardCell::new(build_state(&base_rows, &cfg)),
            model: PublishCell::new(ModelBlueprint::of(&mk_model)),
            pins: Vec::new(),
            model_seqs: Vec::new(),
            published: Vec::new(),
            model_published: Vec::new(),
        }
    };

    let reader_step = || -> Step<World> {
        Box::new(|w: &mut World| {
            w.pins.push(w.shard.pin());
            w.model_seqs.push(w.model.seq());
        })
    };
    let reader = vec![reader_step(), reader_step(), reader_step()];

    let writer: Vec<Step<World>> = vec![
        {
            let (traj, emb, code) = (ins_traj, ins_emb, ins_code);
            Box::new(move |w: &mut World| {
                let cur = w.shard.pin();
                let next = cur.with_insert(ins_id, traj.clone(), emb.clone(), code.clone());
                let seq = w.shard.publish(next);
                w.published.push(seq);
            })
        },
        Box::new(|w: &mut World| {
            let cur = w.shard.pin();
            let seq = w.shard.publish(cur.with_remove(0));
            w.published.push(seq);
        }),
        {
            let cfg = cfg.clone();
            Box::new(move |w: &mut World| {
                let cur = w.shard.pin();
                let seq = w.shard.publish(cur.rebuilt(&cfg));
                w.published.push(seq);
            })
        },
    ];

    let swap: Vec<Step<World>> = vec![
        Box::new(move |w: &mut World| {
            let v = w.model.publish(ModelBlueprint::of(&model_b));
            w.model_published.push(v);
        }),
        Box::new(|w: &mut World| {
            let cur = w.shard.pin();
            let seq = w.shard.publish(cur.with_degraded());
            w.published.push(seq);
        }),
    ];

    let threads = vec![reader, writer, swap];
    let lens: Vec<usize> = threads.iter().map(|t| t.len()).collect();
    assert_eq!(lens, vec![3, 3, 2], "the schedule shape the count below pins");

    let explored = match explore(mk_state, &threads, check_world) {
        Ok(n) => n,
        Err(v) => panic!("publish protocol violated: {v}"),
    };

    // Exhaustiveness is part of the contract: exactly the multinomial,
    // pinned numerically so the schedule space cannot silently shrink.
    assert_eq!(explored, interleaving_count(&[3, 3, 2]));
    assert_eq!(explored, 560);
}

/// Readers refresh their model replica from the blueprint cell; a pin
/// taken before a hot swap must keep instantiating the *old* model
/// bit-for-bit, while pins taken after the swap see the new one.
#[test]
fn pinned_blueprints_are_immune_to_hot_swaps() {
    let (dataset, model) = world();
    let cell = PublishCell::new(ModelBlueprint::of(&model));
    let probe = &dataset.query[0];

    let before = cell.pin();
    assert_eq!(before.version(), 0);

    let ctx = ModelContext::prepare(&dataset.training_visible(), &ModelConfig::tiny(), 11);
    let model_b = Traj2Hash::new(ModelConfig::tiny(), &ctx, 29);
    let stamped = cell.publish(ModelBlueprint::of(&model_b));
    assert_eq!(stamped, 1, "first swap stamps version 1");

    let after = cell.pin();
    assert_eq!(after.version(), 1);

    let e_before = before.instantiate().embed(probe);
    let e_after = after.instantiate().embed(probe);
    assert_eq!(
        e_before.data(),
        model.embed(probe).data(),
        "pre-swap pin must replicate the original model exactly"
    );
    assert_eq!(
        e_after.data(),
        model_b.embed(probe).data(),
        "post-swap pin must replicate the swapped model exactly"
    );
    assert_ne!(
        e_before.data(),
        e_after.data(),
        "the two generations are genuinely different models"
    );
}
