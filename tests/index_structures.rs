//! Integration tests of the exact index structures against codes and
//! embeddings produced by a real (untrained is enough) model — the data
//! distribution that actually matters for this library.

use traj_data::{CityGenerator, CityParams};
use traj_index::{euclidean_top_k, hamming_top_k, BinaryCode, HammingTable, MultiIndexHashing, VpTree};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn model_codes_and_embeddings(n: usize) -> (Vec<BinaryCode>, Vec<Vec<f32>>) {
    let trajs = CityGenerator::new(CityParams::test_city(), 77).generate(n);
    let cfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&trajs, &cfg, 77);
    let model = Traj2Hash::new(cfg, &ctx, 77);
    let codes = model
        .hash_all(&trajs)
        .iter()
        .map(|s| BinaryCode::from_signs(s))
        .collect();
    let embeddings = model.embed_all(&trajs);
    (codes, embeddings)
}

#[test]
fn mih_equals_brute_force_on_model_codes() {
    let (codes, _) = model_codes_and_embeddings(250);
    let mih = MultiIndexHashing::build(codes.clone(), 4);
    for qi in [0usize, 50, 249] {
        for k in [1usize, 10, 40] {
            let got: Vec<f64> = mih.top_k(&codes[qi], k).unwrap().iter().map(|h| h.distance).collect();
            let want: Vec<f64> =
                hamming_top_k(&codes, &codes[qi], k).iter().map(|h| h.distance).collect();
            assert_eq!(got, want, "qi={qi} k={k}");
        }
    }
}

#[test]
fn vptree_equals_brute_force_on_model_embeddings() {
    let (_, embeddings) = model_codes_and_embeddings(250);
    let tree = VpTree::build(embeddings.clone());
    for qi in [0usize, 123, 200] {
        for k in [1usize, 5, 25] {
            let got: Vec<usize> =
                tree.top_k(&embeddings[qi], k).iter().map(|h| h.index).collect();
            let want: Vec<usize> =
                euclidean_top_k(&embeddings, &embeddings[qi], k).iter().map(|h| h.index).collect();
            assert_eq!(got, want, "qi={qi} k={k}");
        }
    }
}

#[test]
fn all_hamming_structures_agree_on_distances() {
    let (codes, _) = model_codes_and_embeddings(150);
    let table = HammingTable::build(codes.clone());
    let mih = MultiIndexHashing::build(codes.clone(), 2);
    for qi in [3usize, 77] {
        let bf: Vec<f64> =
            hamming_top_k(&codes, &codes[qi], 15).iter().map(|h| h.distance).collect();
        let hy: Vec<f64> =
            table.hybrid_top_k(&codes[qi], 15).unwrap().iter().map(|h| h.distance).collect();
        let mi: Vec<f64> = mih.top_k(&codes[qi], 15).unwrap().iter().map(|h| h.distance).collect();
        assert_eq!(bf, hy);
        assert_eq!(bf, mi);
    }
}

#[test]
fn vptree_prunes_on_model_embeddings() {
    // Model embeddings of city trajectories are highly clustered, which
    // is exactly where the VP-tree should prune well.
    let (_, embeddings) = model_codes_and_embeddings(400);
    let tree = VpTree::build(embeddings.clone());
    let (_, evals) = tree.top_k_counted(&embeddings[10], 10);
    assert!(
        evals < embeddings.len(),
        "VP-tree evaluated every distance ({evals}/{})",
        embeddings.len()
    );
}
