//! Per-query traces agree with the engines they observe.
//!
//! The tracing layer must be a pure observer: for any corpus and any
//! shard count, the sharded engine's [`QueryTrace`] fans out across
//! exactly the configured shard count, its candidate totals reconcile
//! with [`QueryInfo`], and — for the strategies whose candidate sets
//! are partition-invariant (`HammingBf`, `EuclideanBf` on the default
//! brute-force backend, `Table`) — its total equals the unsharded
//! facade's on the same corpus. `Mih` over-fetches `k + tombstones`
//! *per shard* and `Hybrid` decides its radius-2 spill per shard, so
//! their work counts legitimately differ between topologies while the
//! hit lists stay bit-identical.
//!
//! With tracing compiled in but no consumer installed, `query` output
//! must be byte-identical to `query_traced` and the traces inert.

use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};
use traj_data::{CityParams, Dataset, SplitSizes};
use traj_engine::{EngineConfig, QueryTrace, ShardConfig, ShardedEngine, Strategy, Traj2HashEngine};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

/// Trace activation is process-global (`traj_obs::enabled()` counts
/// thread-local recorders too), so tests asserting active vs inert
/// traces serialize through this gate.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(|p| p.into_inner())
}

/// Same deterministic world as the shard parity suite: synthetic city,
/// untrained tiny model (the model holds `Rc` parameters, so it cannot
/// be cached in a shared static).
fn world() -> (Dataset, Traj2Hash) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 90 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    (dataset, model)
}

/// Strategies whose candidate *sets* do not depend on how the corpus is
/// partitioned; only these may assert facade == sharded totals.
fn partition_invariant(strategy: Strategy) -> bool {
    matches!(strategy, Strategy::HammingBf | Strategy::EuclideanBf | Strategy::Table)
}

fn assert_clock_monotone(trace: &QueryTrace) {
    assert!(!trace.steps.is_empty(), "active trace must stamp steps");
    for (i, &(clock, label)) in trace.steps.iter().enumerate() {
        assert_eq!(clock, i as u64, "step clock must count from 0 ({label})");
    }
}

fn check_trace_parity(shards: usize, corpus_len: usize, k: usize, qi: usize) {
    let _gate = gate();
    let (dataset, model) = world();
    let corpus = dataset.database[..corpus_len].to_vec();
    let flat =
        Traj2HashEngine::build_from(&model, corpus.clone(), EngineConfig::default()).unwrap();
    let sharded = ShardedEngine::build_from(
        &model,
        corpus,
        EngineConfig::default(),
        ShardConfig { shards, fan_out_threads: 0 },
    )
    .unwrap();
    let q = &dataset.query[qi % dataset.query.len()];

    let rec = Arc::new(traj_obs::InMemoryRecorder::default());
    traj_obs::with_local_recorder(rec, || {
        let mut ids = std::collections::HashSet::new();
        for strategy in Strategy::ALL {
            let (fh, fi, ft) = flat.query_traced(q, k, strategy).unwrap();
            let (sh, si, st) = sharded.query_traced(q, k, strategy).unwrap();
            assert_eq!(fh, sh, "{} hits diverged at shards={shards} k={k}", strategy.name());
            assert!(ft.active && st.active, "recorder installed, traces must be live");
            assert!(
                ids.insert(ft.query_id) && ids.insert(st.query_id),
                "query ids must be process-unique"
            );
            assert_eq!(ft.shard_count(), 1, "facade reports one shard row");
            assert_eq!(
                st.shard_count(),
                shards,
                "{} fan-out must cover every configured shard",
                strategy.name()
            );
            // The trace's totals are the same numbers QueryInfo reports.
            assert_eq!(ft.candidates(), fi.candidates, "{} facade trace", strategy.name());
            assert_eq!(st.candidates(), si.candidates, "{} sharded trace", strategy.name());
            if partition_invariant(strategy) {
                assert_eq!(
                    st.candidates(),
                    ft.candidates(),
                    "{} candidate total must be partition-invariant at shards={shards}",
                    strategy.name()
                );
            }
            assert_clock_monotone(&ft);
            assert_clock_monotone(&st);
            // Every shard row carries exactly one taxonomy label on a
            // healthy engine, and pins a live publish seq.
            for row in ft.shards.iter().chain(&st.shards) {
                assert_eq!(row.steps.len(), 1, "{:?}", row.steps);
                assert!(!row.degraded && !row.fallback);
            }
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn sharded_trace_matches_facade_on_identical_corpora(
        shards in 1usize..6,
        corpus_len in 24usize..90,
        k in 1usize..13,
        qi in 0usize..64,
    ) {
        check_trace_parity(shards, corpus_len, k, qi);
    }
}

#[test]
fn disabled_mode_output_is_byte_identical_and_traces_inert() {
    let _gate = gate();
    assert!(
        !traj_obs::enabled() && !traj_obs::flight::installed(),
        "no trace consumer may be installed during the disabled-mode check"
    );
    let (dataset, model) = world();
    let flat = Traj2HashEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
    )
    .unwrap();
    let sharded = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 4, fan_out_threads: 0 },
    )
    .unwrap();
    for q in dataset.query.iter().take(4) {
        for strategy in Strategy::ALL {
            for (plain, traced) in [
                (flat.query(q, 9, strategy).unwrap(), flat.query_traced(q, 9, strategy).unwrap()),
                (
                    sharded.query(q, 9, strategy).unwrap(),
                    sharded.query_traced(q, 9, strategy).unwrap(),
                ),
            ] {
                let (hits, _info, trace) = traced;
                assert_eq!(plain.len(), hits.len());
                for (a, b) in plain.iter().zip(&hits) {
                    assert_eq!(a.id, b.id, "{} ids diverged", strategy.name());
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "{} distances must be byte-identical",
                        strategy.name()
                    );
                }
                assert!(!trace.active, "trace must be inert with no consumer installed");
                assert_eq!(trace.query_id, 0);
                assert!(trace.steps.is_empty());
                assert_eq!(trace.shard_count(), 0);
                assert_eq!(trace.candidates(), 0);
            }
        }
    }
}

#[test]
fn degrade_drill_is_visible_in_the_trace_taxonomy() {
    let _gate = gate();
    let (dataset, model) = world();
    let mut sharded = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 3, fan_out_threads: 0 },
    )
    .unwrap();
    let q = &dataset.query[0];
    let rec = Arc::new(traj_obs::InMemoryRecorder::default());
    traj_obs::with_local_recorder(rec, || {
        let (_, _, healthy) = sharded.query_traced(q, 5, Strategy::Mih).unwrap();
        assert!(healthy.shards.iter().all(|r| !r.degraded && r.steps == ["indexed"]));
        let (_, _, scan) = sharded.query_traced(q, 5, Strategy::HammingBf).unwrap();
        assert!(scan.shards.iter().all(|r| r.steps == ["designed_scan"]));

        sharded.force_degrade();
        // Mih lost its index: the scan that answers is a fallback.
        let (_, _, fb) = sharded.query_traced(q, 5, Strategy::Mih).unwrap();
        assert!(fb.shards.iter().all(|r| r.degraded && r.steps == ["fallback_scan"]));
        // HammingBf always scans: degraded, but never a fallback.
        let (_, _, deg) = sharded.query_traced(q, 5, Strategy::HammingBf).unwrap();
        assert!(deg.shards.iter().all(|r| r.degraded && r.steps == ["degraded_scan"]));

        assert!(sharded.recover());
        let (_, _, back) = sharded.query_traced(q, 5, Strategy::Mih).unwrap();
        assert!(back.shards.iter().all(|r| !r.degraded && r.steps == ["indexed"]));
    });
}
