//! Sharded == unsharded, bit for bit.
//!
//! The sharded engine's whole correctness story is one claim: for any
//! corpus, any shard count, any interleaving of inserts and removes,
//! and all five Section V-E strategies, [`ShardedEngine`] answers every
//! query with exactly the hits — ids *and* distances, in order — that
//! the single-writer [`Traj2HashEngine`] facade returns. This suite
//! pins that claim down:
//!
//! * fresh builds across shard counts 1..8, every strategy, several k;
//! * property-based random insert/remove interleavings applied to both
//!   engines in lockstep (with a tiny rebuild threshold so per-shard
//!   compactions actually fire mid-stream);
//! * [`ShardedEngine::query_many`] == per-query [`ShardedEngine::query`];
//! * [`ShardReader`] (the replica-model reader path) == the writer;
//! * threaded fan-out == sequential fan-out;
//! * snapshots interchange between the two engines in both directions.

use proptest::prelude::*;
use traj_data::{CityParams, Dataset, SplitSizes, Trajectory};
use traj_engine::{
    EngineConfig, EngineError, ShardConfig, ShardedEngine, Strategy, Traj2HashEngine,
};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

/// Same deterministic world as the engine parity suite: synthetic city,
/// untrained tiny model.
fn world() -> (Dataset, Traj2Hash) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 90 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    (dataset, model)
}

fn scfg(shards: usize) -> ShardConfig {
    ShardConfig { shards, fan_out_threads: 0 }
}

#[test]
fn fresh_sharded_matches_unsharded_for_every_shard_count_and_strategy() {
    let (dataset, model) = world();
    let corpus = dataset.database.clone();
    let flat =
        Traj2HashEngine::build_from(&model, corpus.clone(), EngineConfig::default()).unwrap();
    for shards in 1..8 {
        let sharded =
            ShardedEngine::build_from(&model, corpus.clone(), EngineConfig::default(), scfg(shards))
                .unwrap();
        assert_eq!(sharded.len(), flat.len());
        assert_eq!(sharded.ids(), flat.ids().collect::<Vec<_>>());
        for q in &dataset.query {
            for k in [1usize, 5, 10, 37] {
                for strategy in Strategy::ALL {
                    assert_eq!(
                        sharded.query(q, k, strategy).unwrap(),
                        flat.query(q, k, strategy).unwrap(),
                        "{} diverged at shards={shards} k={k}",
                        strategy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn threaded_fan_out_matches_sequential() {
    let (dataset, model) = world();
    let seq = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 5, fan_out_threads: 0 },
    )
    .unwrap();
    let par = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 5, fan_out_threads: 3 },
    )
    .unwrap();
    for q in &dataset.query {
        for strategy in Strategy::ALL {
            assert_eq!(
                par.query(q, 12, strategy).unwrap(),
                seq.query(q, 12, strategy).unwrap(),
                "{} diverged between threaded and sequential fan-out",
                strategy.name()
            );
        }
    }
}

#[test]
fn query_many_matches_per_query_exactly() {
    let (dataset, model) = world();
    let engine = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        scfg(4),
    )
    .unwrap();
    for k in [1usize, 10] {
        for strategy in Strategy::ALL {
            let batched = engine.query_many(&dataset.query, k, strategy).unwrap();
            assert_eq!(batched.len(), dataset.query.len());
            for (q, got) in dataset.query.iter().zip(&batched) {
                assert_eq!(
                    *got,
                    engine.query(q, k, strategy).unwrap(),
                    "{} batched answer diverged at k={k}",
                    strategy.name()
                );
            }
        }
    }
    // Degenerate batches answer with the right shape, never panic.
    let none: Vec<Trajectory> = Vec::new();
    assert!(engine.query_many(&none, 10, Strategy::Mih).unwrap().is_empty());
    let zero_k = engine.query_many(&dataset.query, 0, Strategy::Mih).unwrap();
    assert_eq!(zero_k.len(), dataset.query.len());
    assert!(zero_k.iter().all(|h| h.is_empty()));
}

#[test]
fn reader_replica_answers_like_the_writer() {
    let (dataset, model) = world();
    let mut engine = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        scfg(3),
    )
    .unwrap();
    let mut reader = engine.reader().into_reader();
    for q in dataset.query.iter().take(4) {
        for strategy in Strategy::ALL {
            assert_eq!(
                reader.query(q, 10, strategy).unwrap(),
                engine.query(q, 10, strategy).unwrap(),
                "{} reader diverged from writer",
                strategy.name()
            );
        }
    }
    // A hot swap re-encodes the corpus under a (here: identical) new
    // model and bumps the blueprint; the reader must refresh its replica
    // and keep matching the writer.
    let replacement = engine
        .refreshed(Traj2Hash::from_spec(&model.spec(), &model.params.clone_values()))
        .unwrap();
    engine.hot_swap(replacement);
    for q in dataset.query.iter().take(4) {
        assert_eq!(
            reader.query(q, 10, Strategy::Hybrid).unwrap(),
            engine.query(q, 10, Strategy::Hybrid).unwrap(),
        );
    }
}

#[test]
fn sharded_lifecycle_matches_unsharded_semantics() {
    let (dataset, model) = world();
    let mut engine = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        scfg(4),
    )
    .unwrap();
    // Unknown and double removals are typed errors on the owning shard.
    assert!(matches!(engine.remove(999_999), Err(EngineError::UnknownId(999_999))));
    engine.remove(3).unwrap();
    assert!(matches!(engine.remove(3), Err(EngineError::UnknownId(3))));
    assert!(!engine.contains(3));
    assert!(engine.get(3).is_none());
    // Inserts get fresh monotone ids, never recycled.
    let novel = dataset.query[2].clone();
    let id = engine.insert(novel.clone());
    assert_eq!(id, dataset.database.len() as u64);
    assert!(engine.contains(id));
    let top = engine.query(&novel, 1, Strategy::EuclideanBf).unwrap();
    assert_eq!((top[0].id, top[0].distance), (id, 0.0));
    engine.remove(id).unwrap();
    engine.compact();
    assert!(engine.insert(novel) > id);
    // Degrade/recover mirror the facade: exact answers throughout.
    let healthy = engine.query(&dataset.query[0], 10, Strategy::EuclideanBf).unwrap();
    engine.force_degrade();
    assert!(engine.stats().degraded);
    assert_eq!(engine.query(&dataset.query[0], 10, Strategy::EuclideanBf).unwrap(), healthy);
    assert!(engine.recover());
    assert!(!engine.stats().degraded);
    assert_eq!(engine.query(&dataset.query[0], 10, Strategy::EuclideanBf).unwrap(), healthy);
}

#[test]
fn snapshots_interchange_between_engines_in_both_directions() {
    let (dataset, model) = world();
    let mut sharded = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        scfg(3),
    )
    .unwrap();
    // Dirty the state so the snapshot covers delta + tombstones too.
    sharded.insert(dataset.query[0].clone());
    sharded.remove(5).unwrap();
    sharded.remove(41).unwrap();

    // Sharded snapshot → unsharded engine.
    let bytes = sharded.snapshot_bytes().unwrap();
    let flat = Traj2HashEngine::from_snapshot_bytes(&bytes).unwrap();
    assert_eq!(flat.ids().collect::<Vec<_>>(), sharded.ids());
    // Unsharded snapshot → sharded engine, with a *different* shard
    // count than the writer used (the layout is not serialized).
    let back = ShardedEngine::from_snapshot_bytes(&flat.snapshot_bytes().unwrap(), scfg(6)).unwrap();
    assert_eq!(back.ids(), sharded.ids());
    for q in &dataset.query {
        for strategy in Strategy::ALL {
            let want = sharded.query(q, 12, strategy).unwrap();
            assert_eq!(
                flat.query(q, 12, strategy).unwrap(),
                want,
                "{} diverged after sharded→flat reload",
                strategy.name()
            );
            assert_eq!(
                back.query(q, 12, strategy).unwrap(),
                want,
                "{} diverged after flat→sharded reload",
                strategy.name()
            );
        }
    }
}

/// Applies one op stream to a sharded engine and to the unsharded
/// facade in lockstep, then checks every strategy answers identically
/// (including through `to_unsharded` and `query_many`).
fn check_sharded_matches_unsharded(shards: usize, ops: &[(bool, usize)]) {
    let (dataset, model) = world();
    // Tiny slack so the op stream crosses per-shard rebuild thresholds.
    let cfg = EngineConfig { rebuild_slack: 4, ..EngineConfig::default() };
    let initial: Vec<Trajectory> = dataset.database[..12].to_vec();
    let mut flat = Traj2HashEngine::build_from(&model, initial.clone(), cfg.clone()).unwrap();
    let mut sharded =
        ShardedEngine::build_from(&model, initial, cfg, scfg(shards)).unwrap();

    let mut live: Vec<u64> = (0..12).collect();
    let mut pool = dataset.database[12..].iter().cloned().cycle();
    for &(insert, pick) in ops {
        if insert {
            let t = pool.next().unwrap();
            let a = flat.insert(t.clone());
            let b = sharded.insert(t);
            assert_eq!(a, b, "id streams diverged");
            live.push(a);
        } else if !live.is_empty() {
            let id = live.remove(pick % live.len());
            flat.remove(id).unwrap();
            sharded.remove(id).unwrap();
        }
    }

    assert_eq!(sharded.len(), flat.len());
    assert_eq!(sharded.ids(), flat.ids().collect::<Vec<_>>());

    let queries: Vec<Trajectory> = dataset.query.iter().take(3).cloned().collect();
    for q in &queries {
        for k in [1usize, 7] {
            for strategy in Strategy::ALL {
                assert_eq!(
                    sharded.query(q, k, strategy).unwrap(),
                    flat.query(q, k, strategy).unwrap(),
                    "{} diverged after {} ops at shards={shards} k={k}",
                    strategy.name(),
                    ops.len()
                );
            }
        }
    }
    // The batched path agrees too, and the materialized single-shard
    // twin is the same engine the facade would have built.
    let batched = sharded.query_many(&queries, 7, Strategy::Hybrid).unwrap();
    for (q, got) in queries.iter().zip(batched) {
        assert_eq!(got, flat.query(q, 7, Strategy::Hybrid).unwrap());
    }
    let twin = sharded.to_unsharded().unwrap();
    assert_eq!(twin.ids().collect::<Vec<_>>(), sharded.ids());
    for q in &queries {
        assert_eq!(
            twin.query(q, 7, Strategy::Mih).unwrap(),
            flat.query(q, 7, Strategy::Mih).unwrap(),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_matches_unsharded_under_random_interleavings(
        shards in 1usize..8,
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..64), 0..20),
    ) {
        check_sharded_matches_unsharded(shards, &ops);
    }
}
