//! Observability integration suite: the JSONL export produced by a real
//! train/serve workload must round-trip through the hand-rolled parser
//! with every record passing its per-kind schema check, and the
//! library-side wiring (trainer spans, engine histograms, loader
//! counters) must tell the same story as the structures it annotates.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use traj_data::{load_porto_csv, CityParams, Dataset, LoadError, LoadPolicy, SplitSizes};
use traj_dist::Measure;
use traj_engine::{EngineConfig, Strategy, Traj2HashEngine};
use traj_obs::{parse_json, validate_record, InMemoryRecorder, Json, JsonlRecorder, Value};
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

static FILE_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_jsonl() -> PathBuf {
    std::env::temp_dir().join(format!(
        "t2h-obs-{}-{}.jsonl",
        std::process::id(),
        FILE_SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

fn tiny_world() -> (Dataset, Traj2Hash, TrainData, TrainConfig) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 120, query: 6, database: 60 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 23);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 23);
    let model = Traj2Hash::new(mcfg, &ctx, 29);
    // validate:true so the workload also emits the train.val_hr10 gauge.
    let tcfg =
        TrainConfig { epochs: 1, num_threads: 1, validate: true, ..TrainConfig::tiny() };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
    (dataset, model, data, tcfg)
}

#[test]
fn jsonl_export_of_a_real_workload_round_trips_the_schema() {
    let (dataset, model, data, tcfg) = tiny_world();
    let path = temp_jsonl();
    let rec = Arc::new(JsonlRecorder::create(&path).unwrap());

    traj_obs::with_local_recorder(rec.clone(), || {
        // One observed epoch...
        let mut m = Traj2Hash::from_spec(&model.spec(), &model.params.clone_values());
        train(&mut m, &data, &tcfg).unwrap();
        // ...all five strategies served, plus a degradation drill...
        let mut engine =
            Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
                .unwrap();
        for strategy in Strategy::ALL {
            for q in &dataset.query {
                let _ = engine.query(q, 5, strategy).unwrap();
            }
        }
        engine.force_degrade();
        let _ = engine.query(&dataset.query[0], 5, Strategy::Mih).unwrap();
        traj_obs::flush();
    });

    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Every line is an object passing its per-kind schema check.
    let mut kinds: Vec<String> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for line in text.lines() {
        let summary = validate_record(line)
            .unwrap_or_else(|e| panic!("schema violation: {e}\n  {line}"));
        kinds.push(summary.kind);
        names.push(summary.name);
    }
    for kind in ["event", "span", "counter", "gauge", "histogram"] {
        assert!(kinds.iter().any(|k| k == kind), "no {kind} record in the export");
    }

    // The epoch span is present and carries the loss decomposition.
    let epoch_line = text
        .lines()
        .find(|l| l.contains("\"kind\":\"span\"") && l.contains("\"train/epoch\""))
        .expect("no train/epoch span in the export");
    let doc = parse_json(epoch_line).unwrap();
    let fields = doc.get("fields").expect("span fields");
    for key in ["loss", "loss_anchors", "loss_triplets", "lr", "beta"] {
        assert!(
            fields.get(key).and_then(Json::as_f64).is_some(),
            "epoch span missing field {key}: {epoch_line}"
        );
    }
    assert!(doc.get("seconds").and_then(Json::as_f64).unwrap() >= 0.0);

    // Each strategy's latency histogram made it out, with coherent
    // quantiles and counts.
    for strategy in Strategy::ALL {
        let name_token = format!("\"{}\"", strategy.metric_name());
        let line = text
            .lines()
            .filter(|l| l.contains("\"kind\":\"histogram\""))
            .rfind(|l| l.contains(&name_token))
            .unwrap_or_else(|| panic!("no histogram line for {}", strategy.metric_name()));
        let doc = parse_json(line).unwrap();
        let count = doc.get("count").and_then(Json::as_f64).unwrap();
        assert!(count >= dataset.query.len() as f64, "{line}");
        let p50 = doc.get("p50").and_then(Json::as_f64).unwrap();
        let p95 = doc.get("p95").and_then(Json::as_f64).unwrap();
        let p99 = doc.get("p99").and_then(Json::as_f64).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "quantiles out of order: {line}");
    }

    // The degradation drill left its marks.
    assert!(names.iter().any(|n| n == "engine.degraded"));
    assert!(names.iter().any(|n| n == "engine.linear_fallbacks"));
}

#[test]
fn jsonl_escapes_hostile_strings_and_maps_nonfinite_to_null() {
    let path = temp_jsonl();
    let rec = Arc::new(JsonlRecorder::create(&path).unwrap());
    let hostile = "quote\" backslash\\ newline\n tab\t unicode\u{2603} control\u{0007}";
    traj_obs::with_local_recorder(rec, || {
        traj_obs::event(
            "hostile",
            &[
                ("text", hostile.into()),
                ("nan", f64::NAN.into()),
                ("inf", f64::INFINITY.into()),
                ("finite", 0.5f64.into()),
            ],
        );
        traj_obs::flush();
    });
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let line = text
        .lines()
        .find(|l| l.contains("\"hostile\""))
        .expect("hostile event missing");
    validate_record(line).unwrap();
    let doc = parse_json(line).unwrap();
    let fields = doc.get("fields").unwrap();
    assert_eq!(fields.get("text").and_then(Json::as_str), Some(hostile));
    assert_eq!(fields.get("nan"), Some(&Json::Null), "NaN must export as null");
    assert_eq!(fields.get("inf"), Some(&Json::Null), "inf must export as null");
    assert_eq!(fields.get("finite").and_then(Json::as_f64), Some(0.5));
}

#[test]
fn porto_loader_counters_match_the_load_report() {
    // 18 healthy rows, 2 corrupt (unclosed bracket, bad latitude).
    let mut csv = String::from("\"TRIP_ID\",\"CALL_TYPE\",\"POLYLINE\"\n");
    for i in 0..18 {
        let lon = -8.62 + (i as f64) * 1e-4;
        csv.push_str(&format!(
            "\"{i}\",\"A\",\"[[{lon:.6},41.15],[{:.6},41.151],[{:.6},41.152]]\"\n",
            lon + 1e-4,
            lon + 2e-4
        ));
    }
    csv.push_str("\"bad0\",\"B\",\"[[-8.62,41.15\"\n");
    csv.push_str("\"bad1\",\"B\",\"[[-8.62,441.15],[-8.62,41.151]]\"\n");

    let rec = Arc::new(InMemoryRecorder::default());
    let policy = LoadPolicy { max_corrupt_fraction: 0.5, ..LoadPolicy::default() };
    let (trajs, report) = traj_obs::with_local_recorder(rec.clone(), || {
        load_porto_csv(csv.as_bytes(), &policy)
    })
    .unwrap();
    assert_eq!(trajs.len(), report.loaded);

    let agg = rec.aggregates();
    for (name, want) in [
        ("data.load.rows", report.rows),
        ("data.load.loaded", report.loaded),
        ("data.load.malformed", report.malformed),
        ("data.load.bad_number", report.bad_number),
        ("data.load.out_of_bounds", report.out_of_bounds),
        ("data.load.too_short", report.too_short),
    ] {
        assert_eq!(agg.counter_value(name), want as u64, "{name}");
    }
    let ev: Vec<_> = agg.events_named("data.load").collect();
    assert_eq!(ev.len(), 1);
    assert_eq!(ev[0].field("rows"), Some(&Value::U64(report.rows as u64)));
    assert_eq!(ev[0].field("budget_exceeded"), Some(&Value::Bool(false)));

    // The budget-exceeded path is observable too.
    let strict = LoadPolicy { max_corrupt_fraction: 0.01, ..LoadPolicy::default() };
    let strict_rec = Arc::new(InMemoryRecorder::default());
    let err = traj_obs::with_local_recorder(strict_rec.clone(), || {
        load_porto_csv(csv.as_bytes(), &strict)
    });
    assert!(matches!(err, Err(LoadError::BudgetExceeded { .. })));
    let strict_agg = strict_rec.aggregates();
    assert_eq!(strict_agg.counter_value("data.load.budget_exceeded"), 1);
    assert_eq!(
        strict_agg
            .events_named("data.load")
            .next()
            .and_then(|e| e.field("budget_exceeded")),
        Some(&Value::Bool(true))
    );
}
