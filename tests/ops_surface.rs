//! End-to-end ops surface: a live sharded engine scraped over HTTP.
//!
//! Installs the global recorder and the flight ring, runs traced
//! queries against a sharded engine, then scrapes the ops server the
//! way an operator would — `/metrics` must validate as Prometheus text
//! exposition and carry the per-query histograms, `/healthz` must track
//! the health cell, and `/traces` must drain the flight ring as NDJSON
//! that passes the same self-validation as an on-disk flight dump.
//!
//! The recorder and the flight ring are process-global, so this file
//! holds exactly one `#[test]` (each file under `tests/` is its own
//! test binary — nothing else shares the process).

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use traj_data::{CityParams, Dataset, SplitSizes};
use traj_engine::{EngineConfig, ShardConfig, ShardedEngine, Strategy};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

/// One tiny blocking GET, the way a scraper does it: write the request
/// head, read to EOF (the server closes), split status from body.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect ops server");
    conn.set_read_timeout(Some(Duration::from_secs(5))).expect("set timeout");
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: ops\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .expect("write request");
    let mut text = String::new();
    let _ = conn.read_to_string(&mut text);
    let status = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in response: {text:?}"));
    let body = match text.split_once("\r\n\r\n") {
        Some((_, body)) => body.to_string(),
        None => String::new(),
    };
    (status, body)
}

#[test]
fn ops_surface_serves_metrics_health_and_flight_traces() {
    // Global plumbing: aggregate recorder for /metrics, flight ring
    // (threshold 0.0 = capture every query) for /traces.
    let rec = Arc::new(traj_obs::InMemoryRecorder::default());
    traj_obs::install(rec);
    let flight = traj_obs::flight::install(traj_obs::FlightConfig {
        capacity: 32,
        tail_threshold_seconds: 0.0,
        dump_path: None,
    });

    // A small sharded engine under live traffic.
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 90 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    let sharded = ShardedEngine::build_from(
        &model,
        dataset.database.clone(),
        EngineConfig::default(),
        ShardConfig { shards: 3, fan_out_threads: 0 },
    )
    .expect("build sharded engine");

    let mut queries = 0u64;
    for q in &dataset.query {
        for strategy in Strategy::ALL {
            let (hits, _info, trace) = sharded.query_traced(q, 7, strategy).expect("query");
            assert!(!hits.is_empty(), "{} returned no hits", strategy.name());
            assert!(trace.active, "recorder installed, trace must be live");
            queries += 1;
        }
    }
    assert!(
        flight.captured() >= queries.min(flight.capacity() as u64),
        "flight ring captured {} of {queries} traced queries",
        flight.captured()
    );

    let health = traj_obs::OpsHealth::new();
    let mut server = traj_obs::OpsServer::start(0, health.clone()).expect("bind ephemeral port");
    let addr = server.addr();

    // /metrics: a valid exposition carrying the per-query series the
    // engine emitted above.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200, "{metrics}");
    let samples = traj_obs::validate_exposition(&metrics)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{metrics}"));
    assert!(samples > 0, "scrape returned an empty exposition:\n{metrics}");
    assert!(metrics.contains("# TYPE engine_query_candidates histogram"), "{metrics}");
    assert!(metrics.contains("# TYPE engine_query_fanout_secs histogram"), "{metrics}");
    assert!(metrics.contains("engine_query_candidates_bucket{le=\"+Inf\"}"), "{metrics}");
    assert!(metrics.contains("engine_query_candidates_p99"), "{metrics}");

    // /healthz tracks the health cell both ways.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("ok"), "{body}");
    health.set(false, "drift p95 over budget");
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("drift p95 over budget"), "{body}");
    health.set(true, "tick 9");
    assert_eq!(http_get(addr, "/healthz").0, 200);

    // /traces drains the ring as NDJSON; every line is a well-formed
    // flight.trace event and the whole body passes the same structural
    // self-validation as an on-disk dump (unique query ids, monotone
    // step clocks, per-shard seqs/candidates reconciling).
    let (status, traces) = http_get(addr, "/traces");
    assert_eq!(status, 200, "{traces}");
    let lines: Vec<&str> = traces.lines().filter(|l| !l.is_empty()).collect();
    assert!(!lines.is_empty(), "no flight traces served");
    for line in &lines {
        traj_obs::validate_record(line).unwrap_or_else(|e| panic!("bad trace line: {e}\n{line}"));
    }
    let validated = traj_obs::flight::validate_flight_dump(&traces)
        .unwrap_or_else(|e| panic!("flight self-validation failed: {e}\n{traces}"));
    assert_eq!(validated, lines.len());

    // The scrape drained the ring: a second scrape is empty until new
    // traffic lands.
    let (status, empty) = http_get(addr, "/traces");
    assert_eq!(status, 200);
    assert!(empty.is_empty(), "second scrape should find a drained ring: {empty:?}");
    let (_, _, _trace) = sharded.query_traced(&dataset.query[0], 5, Strategy::Mih).expect("query");
    let (_, refilled) = http_get(addr, "/traces");
    assert_eq!(refilled.lines().filter(|l| !l.is_empty()).count(), 1, "{refilled}");

    server.shutdown();
    traj_obs::flight::uninstall();
    traj_obs::uninstall();
}
