//! Torn-write harness: truncates checkpoint and snapshot images at
//! *every* byte boundary and asserts the loaders return typed errors —
//! never a panic, never garbage — and that a live engine keeps serving
//! its previous generation after a failed snapshot load.
//!
//! In-memory decoding (`Checkpoint::decode`,
//! `Traj2HashEngine::from_snapshot_bytes`) covers every boundary
//! cheaply; the file-based paths (`read_from_file`, `load_snapshot`)
//! are exercised on a sample of boundaries since each needs a real
//! file on disk.

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_engine::{EngineConfig, EngineError, Strategy, Traj2HashEngine};
use traj2hash::checkpoint::Checkpoint;
use traj2hash::{
    train, CheckpointError, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData,
};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("torn-writes-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny trained world: model + engine + a checkpoint on disk.
fn world(dir: &std::path::Path) -> (Dataset, Traj2HashEngine) {
    let dataset = Dataset::generate(CityParams::test_city(), SplitSizes::tiny(), 21);
    let mcfg = ModelConfig::tiny();
    let tcfg = TrainConfig {
        epochs: 1,
        checkpoint_path: Some(dir.join("model.ckpt")),
        ..TrainConfig::tiny()
    };
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 21);
    let mut model = Traj2Hash::new(mcfg, &ctx, 21);
    let data = TrainData::prepare(&dataset, Measure::Hausdorff, &tcfg).unwrap();
    train(&mut model, &data, &tcfg).unwrap();
    let engine =
        Traj2HashEngine::build(model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    (dataset, engine)
}

#[test]
fn every_truncation_of_a_checkpoint_is_a_typed_error() {
    let dir = tempdir("ckpt");
    let (_, _) = world(&dir);
    let bytes = std::fs::read(dir.join("model.ckpt")).unwrap();
    assert!(bytes.len() > 24, "checkpoint suspiciously small: {} bytes", bytes.len());
    assert!(Checkpoint::decode(&bytes).is_ok(), "untruncated image must decode");

    for cut in 0..bytes.len() {
        match Checkpoint::decode(&bytes[..cut]) {
            Ok(_) => panic!("truncation at byte {cut}/{} decoded successfully", bytes.len()),
            // Every failure is a typed decode error; IO can't occur
            // in-memory, and any other variant would mean the decoder
            // read past the validated header.
            Err(
                CheckpointError::TooShort
                | CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion(_)
                | CheckpointError::LengthMismatch { .. }
                | CheckpointError::ChecksumMismatch { .. }
                | CheckpointError::Malformed(_),
            ) => {}
            Err(other) => panic!("truncation at byte {cut} surfaced {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn every_truncation_of_a_snapshot_is_a_typed_error() {
    let dir = tempdir("snap");
    let (_, engine) = world(&dir);
    let bytes = engine.snapshot_bytes().unwrap();
    assert!(Traj2HashEngine::from_snapshot_bytes(&bytes).is_ok());

    for cut in 0..bytes.len() {
        match Traj2HashEngine::from_snapshot_bytes(&bytes[..cut]) {
            Ok(_) => panic!("truncation at byte {cut}/{} decoded successfully", bytes.len()),
            Err(EngineError::Snapshot(_)) => {}
            Err(other) => panic!("truncation at byte {cut} surfaced {other:?}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_snapshot_load_leaves_the_previous_generation_serving() {
    let dir = tempdir("serve");
    let (dataset, engine) = world(&dir);
    let snap = dir.join("engine.snap");
    engine.save_snapshot(&snap).unwrap();
    let bytes = std::fs::read(&snap).unwrap();

    let before: Vec<_> = Strategy::ALL
        .iter()
        .map(|&s| engine.query(&dataset.query[0], 5, s).unwrap())
        .collect();
    let gen_before = engine.stats().generation;

    // File-based loads on a spread of torn images, including the
    // structural header boundaries and a mid-payload cut.
    let cuts: Vec<usize> =
        [0usize, 1, 7, 8, 11, 12, 19, 20, 23, 24, bytes.len() / 2, bytes.len() - 1]
            .into_iter()
            .filter(|&c| c < bytes.len())
            .collect();
    for cut in cuts {
        std::fs::write(&snap, &bytes[..cut]).unwrap();
        match Traj2HashEngine::load_snapshot(&snap) {
            Ok(_) => panic!("torn snapshot (cut {cut}) loaded"),
            Err(EngineError::Snapshot(_)) => {}
            Err(other) => panic!("torn snapshot (cut {cut}) surfaced {other:?}"),
        }
        // The serving engine is untouched by the failed load: same
        // generation, same answers, still healthy.
        assert_eq!(engine.stats().generation, gen_before);
        assert!(!engine.stats().degraded);
        for (i, &s) in Strategy::ALL.iter().enumerate() {
            assert_eq!(
                engine.query(&dataset.query[0], 5, s).unwrap(),
                before[i],
                "{} answers changed after a failed snapshot load",
                s.name()
            );
        }
    }

    // Restoring the intact image loads cleanly again.
    std::fs::write(&snap, &bytes).unwrap();
    let restored = Traj2HashEngine::load_snapshot(&snap).unwrap();
    assert_eq!(restored.len(), engine.len());
    let _ = std::fs::remove_dir_all(&dir);
}
