//! Property tests of the bucket-pruned exact top-k driver: whatever the
//! corpus shape, measure, k, grid resolution, or thread count, the
//! pruned sweep must return bit-for-bit the dense all-pairs result.
//! This is the workspace-level guarantee the supervision pipeline and
//! the evaluation protocol both lean on (see `traj_dist::sparse` for
//! the exactness argument).

use proptest::prelude::*;
use traj_data::{CityGenerator, CityParams, Point, Trajectory};
use traj_dist::{pruned_self_top_k, pruned_top_k, Measure, PrunedTopK};
use traj_eval::dense_ground_truth_top_k;

/// Raw random trajectories — no road structure, adversarial for the
/// bucket seeding (endpoints land anywhere).
fn trajectory_strategy(max_len: usize) -> impl Strategy<Value = Trajectory> {
    proptest::collection::vec((-2000.0f64..2000.0, -2000.0f64..2000.0), 1..max_len)
        .prop_map(|xy| Trajectory::from_xy(&xy))
}

/// Every measure the repo implements, parameterized variants included.
fn all_measures() -> Vec<Measure> {
    vec![
        Measure::Dtw,
        Measure::Frechet,
        Measure::Hausdorff,
        Measure::CDtw(8),
        Measure::Erp(Point::new(0.0, 0.0)),
        Measure::Edr(25.0),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn pruned_top_k_matches_dense_on_random_trajectories(
        trajs in proptest::collection::vec(trajectory_strategy(10), 12..60),
        nq in 1usize..8,
        cell_m in 100.0f64..3000.0,
    ) {
        let nq = nq.min(trajs.len() - 1);
        let (queries, database) = trajs.split_at(nq);
        for measure in all_measures() {
            for k in [1usize, 10, 50] {
                let cfg = PrunedTopK::new(k).with_cell_m(cell_m);
                let pruned = pruned_top_k(queries, database, measure, &cfg).unwrap();
                let dense =
                    dense_ground_truth_top_k(queries, database, measure, k, Some(1)).unwrap();
                prop_assert_eq!(
                    &pruned.top_k, &dense,
                    "parity failed: measure {} k {} cell {}", measure, k, cell_m
                );
            }
        }
    }

    #[test]
    fn pruned_self_join_matches_dense_on_city_corpora(
        seed in 0u64..1000,
        n in 20usize..80,
        k in 1usize..12,
    ) {
        // Road-following city trajectories: the workload the bucket
        // seeding is designed for, where pruning actually fires.
        let trajs = CityGenerator::new(CityParams::test_city(), seed).generate(n);
        for measure in Measure::paper_suite() {
            let result =
                pruned_self_top_k(&trajs, measure, &PrunedTopK::new(k)).unwrap();
            for (i, row) in result.top_k.iter().enumerate() {
                let mut rest: Vec<Trajectory> = trajs.clone();
                let q = rest.remove(i);
                let dense = dense_ground_truth_top_k(
                    std::slice::from_ref(&q), &rest, measure, k, Some(1),
                ).unwrap();
                // map the diagonal-free indexing back to corpus indices
                let dense_row: Vec<usize> = dense[0]
                    .iter()
                    .map(|&j| if j >= i { j + 1 } else { j })
                    .collect();
                prop_assert_eq!(
                    row.clone(), dense_row,
                    "self-join row {} diverged for {}", i, measure
                );
            }
        }
    }

    #[test]
    fn thread_count_never_changes_results(
        trajs in proptest::collection::vec(trajectory_strategy(8), 16..48),
        threads in 2usize..6,
    ) {
        let (queries, database) = trajs.split_at(6);
        let serial = PrunedTopK::new(10).with_threads(1);
        let parallel = PrunedTopK::new(10).with_threads(threads);
        for measure in [Measure::Dtw, Measure::Hausdorff, Measure::Edr(25.0)] {
            let a = pruned_top_k(queries, database, measure, &serial).unwrap();
            let b = pruned_top_k(queries, database, measure, &parallel).unwrap();
            prop_assert_eq!(&a.top_k, &b.top_k, "threads={} diverged for {}", threads, measure);
            prop_assert_eq!(a.stats, b.stats);
        }
    }
}
