//! Acceptance test for the always-on soak loop (`DESIGN.md` §12): a
//! seeded `traj-soak` run with injected IO faults and porto→chengdu
//! drift must complete every tick, perform at least one detected-drift
//! refresh hot-swap and one degrade→recover drill, end with zero
//! degraded strategies, answer queries identically to a freshly
//! rebuilt engine after the swap, and leave a JSONL telemetry stream
//! that validates offline.

use std::collections::HashMap;
use std::sync::Arc;

use traj_engine::{Strategy, Traj2HashEngine};
use traj_obs::{validate_record, JsonlRecorder, Recorder};
use traj_soak::{SoakConfig, SoakRunner, TickHealth};

fn tempdir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("soak-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The demo soak scaled down for a debug-build test run, with a seed
/// chosen (deterministically, once) so the drift detector fires inside
/// the 30-tick budget. Everything else — fault plan, heartbeats,
/// porto→chengdu schedule — is the stock demo configuration.
fn test_config(workdir: std::path::PathBuf) -> SoakConfig {
    let mut cfg = SoakConfig::demo(workdir);
    cfg.seed = 5;
    cfg.ticks = 30;
    cfg.window = 100;
    cfg.eval_db = 28;
    cfg.eval_queries = 6;
    cfg.initial_epochs = 5;
    cfg.degrade_drills = vec![18, 26];
    cfg.model = traj2hash::ModelConfig {
        dim: 32,
        blocks: 1,
        heads: 2,
        grid_dim: 16,
        fine_cell_m: 100.0,
        ..traj2hash::ModelConfig::small()
    };
    cfg
}

#[test]
fn seeded_fault_injected_soak_run_meets_the_acceptance_bar() {
    let dir = tempdir("run");
    let jsonl = dir.join("soak.jsonl");
    let rec = Arc::new(JsonlRecorder::create(&jsonl).unwrap());

    let cfg = test_config(dir.join("work"));
    let ticks = cfg.ticks;
    let (report, runner) = traj_obs::with_local_recorder(rec.clone(), || {
        let mut runner = SoakRunner::new(cfg).expect("bootstrap");
        let report = runner.run().expect("soak run");
        (report, runner)
    });
    rec.flush();

    // Completes all ticks, every one either healthy or typed-degraded.
    assert_eq!(report.ticks, ticks);
    assert_eq!(report.tick_log.len() as u64, ticks);

    // The drift detector fired and drove at least one full refresh:
    // fine-tune → durable snapshot → hot swap.
    assert!(report.drift_detections >= 1, "drift never detected:\n{}", report.summary());
    assert!(report.refreshes >= 1, "no refresh completed:\n{}", report.summary());
    assert!(report.hot_swaps >= 1);
    assert_eq!(report.hot_swaps, runner.engine().telemetry().hot_swaps);

    // At least one degrade → recover drill ran end-to-end, and the
    // degraded engine actually served queries while down.
    assert!(report.drills >= 1);
    assert!(report.recoveries >= 1, "no recovery:\n{}", report.summary());
    let telemetry = runner.engine().telemetry();
    let degraded_served: u64 =
        Strategy::ALL.iter().map(|&s| telemetry.strategy(s).degraded_queries).sum();
    assert!(degraded_served > 0, "degraded mode never answered a query");

    // Faults were injected and absorbed: the run still ends healthy
    // with zero degraded strategies.
    assert!(report.faults_injected >= 1, "fault plan never fired:\n{}", report.summary());
    assert!(report.degraded_ticks >= 1, "faults/drills left no degraded ticks");
    assert_eq!(report.final_health, TickHealth::Healthy, "{}", report.summary());
    assert!(!report.final_stats.degraded, "engine ended degraded");

    // Post-swap parity: the hot-swapped engine answers exactly like an
    // engine rebuilt from scratch over the same model and live corpus.
    let live = runner.live_corpus();
    let id_to_pos: HashMap<u64, usize> =
        live.iter().enumerate().map(|(i, (id, _))| (*id, i)).collect();
    let corpus: Vec<_> = live.iter().map(|(_, t)| t.clone()).collect();
    let fresh = Traj2HashEngine::build_from(
        runner.engine().model(),
        corpus.clone(),
        runner.engine().config().clone(),
    )
    .unwrap();
    for q in corpus.iter().step_by(37).take(3) {
        for strategy in Strategy::ALL {
            let served: Vec<(usize, f64)> = runner
                .engine()
                .query(q, 10, strategy)
                .unwrap()
                .into_iter()
                .map(|h| (id_to_pos[&h.id], h.distance))
                .collect();
            let rebuilt: Vec<(usize, f64)> = fresh
                .query(q, 10, strategy)
                .unwrap()
                .into_iter()
                .map(|h| (h.id as usize, h.distance))
                .collect();
            assert_eq!(
                served,
                rebuilt,
                "{} diverged from a fresh rebuild after hot swap",
                strategy.name()
            );
        }
    }

    // The JSONL stream validates offline and holds the key lifecycle
    // events.
    let text = std::fs::read_to_string(&jsonl).unwrap();
    let mut records = 0usize;
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        validate_record(line).unwrap_or_else(|e| panic!("invalid record: {e}\n{line}"));
        records += 1;
    }
    assert!(records as u64 >= ticks, "expected at least one record per tick");
    for needle in [
        "soak.tick",
        "soak.eval",
        "soak.drift.detected",
        "soak.refresh.completed",
        "soak.drill.degrade",
        "soak.recovered",
        "engine.hot_swap",
    ] {
        assert!(text.contains(needle), "JSONL stream is missing {needle} events");
    }

    let _ = std::fs::remove_dir_all(&dir);
}
