//! Cross-crate property tests: the model's structural guarantees hold on
//! arbitrary trajectories, not just the synthetic city distribution.

use proptest::prelude::*;
use traj_data::{CityGenerator, CityParams, Trajectory};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn model_fixture() -> (Traj2Hash, Traj2Hash) {
    let trajs = CityGenerator::new(CityParams::test_city(), 31).generate(12);
    let cfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&trajs, &cfg, 31);
    let with_rev = Traj2Hash::new(cfg, &ctx, 31);
    let without_rev = Traj2Hash::new(ModelConfig::tiny().without_rev_aug(), &ctx, 31);
    (with_rev, without_rev)
}

fn trajectory_strategy() -> impl Strategy<Value = Trajectory> {
    // points inside the test city's extent
    proptest::collection::vec((0.0f64..2000.0, 0.0f64..2000.0), 2..25)
        .prop_map(|xy| Trajectory::from_xy(&xy))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn lemma3_reverse_symmetry_for_arbitrary_inputs(
        a in trajectory_strategy(),
        b in trajectory_strategy(),
    ) {
        let (model, _) = model_fixture();
        let fwd = model.approx_distance(&a, &b);
        let rev = model.approx_distance(&a.reversed(), &b.reversed());
        prop_assert!((fwd - rev).abs() < 1e-3 * (1.0 + fwd.abs()),
            "Lemma 3 violated: {} vs {}", fwd, rev);
    }

    #[test]
    fn embedding_is_finite_and_fixed_width(t in trajectory_strategy()) {
        let (model, _) = model_fixture();
        let e = model.embed(&t);
        prop_assert_eq!(e.cols(), model.embedding_dim());
        prop_assert!(e.is_finite());
        let code = model.hash_signs(&t);
        prop_assert_eq!(code.len(), model.embedding_dim());
        prop_assert!(code.iter().all(|&s| s == 1 || s == -1));
    }

    #[test]
    fn approx_distance_is_symmetric_and_zero_on_self(
        a in trajectory_strategy(),
        b in trajectory_strategy(),
    ) {
        let (model, _) = model_fixture();
        let ab = model.approx_distance(&a, &b);
        let ba = model.approx_distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-4 * (1.0 + ab.abs()));
        prop_assert!(model.approx_distance(&a, &a) < 1e-4);
    }

    #[test]
    fn hash_matches_embedding_signs(t in trajectory_strategy()) {
        let (model, _) = model_fixture();
        let e = model.embed(&t);
        let code = model.hash_signs(&t);
        for (&s, &x) in code.iter().zip(e.data()) {
            prop_assert_eq!(s == 1, x > 0.0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Footnote 1 of the paper: element-wise **sum** of forward and
    /// reversed embeddings would force the unwanted identity
    /// `E(h(T1), h(T2)) == E(h(T1), h(T2^r))` — a trajectory would be
    /// exactly as close to another as to its reverse. Concatenation
    /// (Eq. 15) must NOT have that collapse: direction information has
    /// to survive.
    #[test]
    fn concatenation_preserves_direction_information(
        a in trajectory_strategy(),
        b in trajectory_strategy(),
    ) {
        // skip near-palindromic inputs where both quantities coincide
        prop_assume!(traj_dist::dtw(&b, &b.reversed()) > 100.0);
        let (model, _) = model_fixture();
        let plain = model.approx_distance(&a, &b);
        let to_reverse = model.approx_distance(&a, &b.reversed());
        prop_assert!((plain - to_reverse).abs() > 1e-6,
            "direction collapsed: d(a,b) == d(a,b^r) == {}", plain);
    }
}
