//! Integration tests of the baseline methods against the shared protocol
//! and the search stack.

use traj_baselines::{
    train_wmse, Fresh, FreshConfig, GruMetricEncoder, HashHead, HashHeadConfig, TrajEncoder,
    TransformerEncoder, WmseConfig,
};
use traj_data::{CityParams, Dataset, NormStats, SplitSizes};
use traj_dist::{auto_theta, distance_matrix, similarity_matrix, Measure};
use traj_eval::{ground_truth_top_k, pack_codes, rank_euclidean, rank_hamming, Metrics};
use traj_index::HammingTable;

fn world() -> Dataset {
    let sizes = SplitSizes { seeds: 24, validation: 10, corpus: 100, query: 10, database: 100 };
    Dataset::generate(CityParams::test_city(), sizes, 17)
}

#[test]
fn wmse_trained_gru_beats_untrained_on_search() {
    let dataset = world();
    let measure = Measure::Dtw;
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 50)
        .expect("ground truth computation failed");
    let norm = NormStats::fit(&dataset.training_visible());
    let d = distance_matrix(&dataset.seeds, measure);
    let sim = similarity_matrix(&d, auto_theta(&d, 0.5));

    let eval = |enc: &dyn TrajEncoder| -> Metrics {
        let db = enc.embed_all(&dataset.database);
        let q = enc.embed_all(&dataset.query);
        Metrics::evaluate(&rank_euclidean(&db, &q, 50), &truth)
    };

    let enc = GruMetricEncoder::plain(16, norm, 3);
    let before = eval(&enc);
    train_wmse(&enc, &dataset.seeds, &sim, &WmseConfig { epochs: 6, ..WmseConfig::default() });
    let after = eval(&enc);
    assert!(
        after.hr10 >= before.hr10,
        "training hurt the GRU baseline: {} -> {}",
        before.hr10,
        after.hr10
    );
    assert!(after.hr10 > 0.0, "trained baseline found nothing");
}

#[test]
fn hash_head_gives_baseline_a_working_hamming_representation() {
    let dataset = world();
    let measure = Measure::Frechet;
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 50)
        .expect("ground truth computation failed");
    let norm = NormStats::fit(&dataset.training_visible());
    let d = distance_matrix(&dataset.seeds, measure);
    let sim = similarity_matrix(&d, auto_theta(&d, 0.5));

    let enc = TransformerEncoder::new(16, 1, 2, norm, 4);
    train_wmse(&enc, &dataset.seeds, &sim, &WmseConfig { epochs: 5, ..WmseConfig::default() });
    let (head, losses) = HashHead::train(
        &enc.embed_all(&dataset.seeds),
        &sim,
        &HashHeadConfig { bits: 16, epochs: 10, ..HashHeadConfig::default() },
    );
    assert!(losses.iter().all(|l| l.is_finite()));

    let db = pack_codes(&head.hash_all(&enc.embed_all(&dataset.database)));
    let q = pack_codes(&head.hash_all(&enc.embed_all(&dataset.query)));
    let m = Metrics::evaluate(&rank_hamming(&db, &q, 50), &truth);
    assert!(m.hr10 > 0.0 && m.hr50 > 0.0, "hash head produced useless codes: {m}");
}

#[test]
fn fresh_codes_work_with_the_hamming_table() {
    let dataset = world();
    let fresh = Fresh::new(FreshConfig {
        resolution: 400.0,
        bits_per_rep: 8,
        ..FreshConfig::default()
    });
    let db_codes = pack_codes(&fresh.hash_all(&dataset.database));
    let table = HammingTable::build(db_codes.clone());
    assert_eq!(table.len(), dataset.database.len());
    // hybrid search returns k results and agrees with brute force
    for q in dataset.query.iter().take(5) {
        let code = traj_index::BinaryCode::from_signs(&fresh.hash_signs(q));
        let hybrid = table.hybrid_top_k(&code, 5).unwrap();
        let bf = traj_index::hamming_top_k(&db_codes, &code, 5);
        assert_eq!(hybrid.len(), 5);
        let hd: Vec<f64> = hybrid.iter().map(|h| h.distance).collect();
        let bd: Vec<f64> = bf.iter().map(|h| h.distance).collect();
        assert_eq!(hd, bd);
    }
}

#[test]
fn fresh_is_deterministic_and_respects_bit_budget() {
    let dataset = world();
    let cfg = FreshConfig { resolution: 500.0, bits_per_rep: 16, repetitions: 4, seed: 5 };
    let a = Fresh::new(cfg.clone());
    let b = Fresh::new(cfg);
    for t in dataset.query.iter().take(5) {
        assert_eq!(a.hash_signs(t), b.hash_signs(t));
        assert_eq!(a.hash_signs(t).len(), 64);
    }
}
