//! Concurrent serving under writer churn.
//!
//! N reader threads query continuously through [`ShardReader`] replicas
//! while the writer thread inserts, removes, compacts, hot-swaps,
//! force-degrades, and recovers. The generation-pinning protocol must
//! guarantee, at every instant:
//!
//! * **no torn reads** — every pinned [`PinnedView`] passes the full
//!   structural consistency check (array lengths, tombstone counts,
//!   ascending-id slot order, index coverage), even while the writer is
//!   mid-publish on some shard;
//! * **monotone publishes** — per-shard publish sequence numbers never
//!   move backwards between two pins by the same reader;
//! * **well-formed answers** — every query returns at most k hits,
//!   sorted under the `(distance, id)` total order, with no duplicate
//!   ids and no non-finite distances;
//! * **pinned views are frozen** — a view pinned before a burst of
//!   writes describes the same corpus afterwards;
//! * and once the writer goes quiet, readers and writer agree with a
//!   fresh single-shard engine over the surviving corpus, bit for bit.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use traj_data::{CityParams, Dataset, SplitSizes, Trajectory};
use traj_engine::{EngineConfig, Hit, ShardConfig, ShardedEngine, Strategy};
use traj2hash::{ModelConfig, ModelContext, Traj2Hash};

fn world() -> (Dataset, Traj2Hash) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 90 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    (dataset, model)
}

fn assert_well_formed(hits: &[Hit], k: usize, what: &str) {
    assert!(hits.len() <= k, "{what}: more than k hits");
    for w in hits.windows(2) {
        assert!(
            (w[0].distance, w[0].id) < (w[1].distance, w[1].id),
            "{what}: hits not strictly sorted under (distance, id)"
        );
    }
    for h in hits {
        assert!(h.distance.is_finite(), "{what}: non-finite distance");
    }
}

#[test]
fn readers_never_observe_torn_or_regressing_state_under_writer_churn() {
    let (dataset, model) = world();
    // Tiny slack so writer ops constantly trigger per-shard rebuilds —
    // the worst case for readers.
    let cfg = EngineConfig { rebuild_slack: 4, ..EngineConfig::default() };
    let scfg = ShardConfig { shards: 4, fan_out_threads: 0 };
    let mut engine =
        ShardedEngine::build_from(&model, dataset.database.clone(), cfg, scfg).unwrap();

    const READERS: usize = 3;
    let stop = AtomicBool::new(false);
    let queries_done = AtomicUsize::new(0);
    let specs: Vec<_> = (0..READERS).map(|_| engine.reader()).collect();
    let query_pool: Vec<Trajectory> = dataset.query.clone();

    std::thread::scope(|scope| {
        for (ri, spec) in specs.into_iter().enumerate() {
            let stop = &stop;
            let queries_done = &queries_done;
            let query_pool = &query_pool;
            scope.spawn(move || {
                let mut reader = spec.into_reader();
                let mut last_seqs: Vec<u64> = reader.pin().publish_seqs();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let view = reader.pin();
                    view.check_consistent()
                        .unwrap_or_else(|e| panic!("reader {ri} pinned a torn view: {e}"));
                    let seqs = view.publish_seqs();
                    for (s, (now, before)) in seqs.iter().zip(&last_seqs).enumerate() {
                        assert!(
                            now >= before,
                            "reader {ri}: shard {s} publish seq went backwards ({before} -> {now})"
                        );
                    }
                    last_seqs = seqs;

                    let q = &query_pool[i % query_pool.len()];
                    let strategy = Strategy::ALL[i % Strategy::ALL.len()];
                    let (hits, info) = reader
                        .query_with_info(q, 10, strategy)
                        .unwrap_or_else(|e| panic!("reader {ri} query failed: {e}"));
                    assert_well_formed(&hits, 10, strategy.name());
                    assert_eq!(info.shards, 4);
                    queries_done.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // The writer churns on the scope's own thread: inserts, random
        // removals, compactions, degrade drills, recoveries, and one
        // hot swap — every lifecycle transition the soak loop exercises.
        let mut live: Vec<u64> = engine.ids();
        let mut pool = dataset.database.iter().cloned().cycle();
        let frozen = engine.pin();
        let frozen_live = frozen.live();
        for step in 0..150usize {
            match step % 7 {
                0..=2 => {
                    live.push(engine.insert(pool.next().unwrap()));
                }
                3..=4 => {
                    if live.len() > 10 {
                        let id = live.remove((step * 31) % live.len());
                        engine.remove(id).unwrap();
                    }
                }
                5 => {
                    if step % 21 == 5 {
                        engine.force_degrade();
                    } else {
                        engine.compact();
                    }
                }
                _ => {
                    assert!(engine.recover());
                }
            }
            if step == 75 {
                let replica =
                    Traj2Hash::from_spec(&engine.model().spec(), &engine.model().params.clone_values());
                let replacement = engine.refreshed(replica).unwrap();
                engine.hot_swap(replacement);
            }
        }
        // The view pinned before the churn still describes the same
        // frozen corpus and is still internally consistent.
        assert_eq!(frozen.live(), frozen_live);
        frozen.check_consistent().unwrap();
        stop.store(true, Ordering::Relaxed);
    });

    assert!(
        queries_done.load(Ordering::Relaxed) >= READERS,
        "readers never got a query through"
    );

    // Quiesced: writer, a fresh reader, and a from-scratch single-shard
    // engine over the survivors all agree exactly.
    let reference = engine.to_unsharded().unwrap();
    let mut reader = engine.reader().into_reader();
    for q in dataset.query.iter().take(4) {
        for strategy in Strategy::ALL {
            let want = reference.query(q, 10, strategy).unwrap();
            assert_eq!(
                engine.query(q, 10, strategy).unwrap(),
                want,
                "{} writer diverged post-churn",
                strategy.name()
            );
            assert_eq!(
                reader.query(q, 10, strategy).unwrap(),
                want,
                "{} reader diverged post-churn",
                strategy.name()
            );
        }
    }
}
