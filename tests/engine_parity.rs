//! Engine correctness suite.
//!
//! Three families of guarantees, matching the refactor's acceptance
//! criteria:
//!
//! 1. **Parity** — a freshly built [`Traj2HashEngine`] answers every
//!    strategy bit-identically to the pre-refactor direct path
//!    (`embed_all` → `pack` → `euclidean_top_k` / `hamming_top_k` /
//!    table / MIH / hybrid), ids and distances both.
//! 2. **Incremental == rebuilt** — any interleaving of insert/remove
//!    (with compactions forced by a tiny rebuild threshold) answers
//!    exactly like an engine built from scratch over the surviving
//!    trajectories (property-based).
//! 3. **Snapshots** — save → load → query roundtrips exactly, and
//!    corrupted/truncated/wrong-magic snapshots are rejected with typed
//!    errors, never a panic or a silently wrong engine.

use proptest::prelude::*;
use traj_data::{CityParams, Dataset, SplitSizes, Trajectory};
use traj_engine::{
    EngineConfig, EngineError, EuclideanBackend, Strategy, Traj2HashEngine,
};
use traj_index::search::Hit as SlotHit;
use traj_index::{
    euclidean_top_k, hamming_top_k, top_k_hits, BinaryCode, HammingTable, MultiIndexHashing,
};
use traj2hash::{CheckpointError, ModelConfig, ModelContext, Traj2Hash};

/// A deterministic little world: synthetic city, untrained tiny model
/// (training is orthogonal to engine correctness and tested elsewhere).
fn world() -> (Dataset, Traj2Hash) {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 90 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 11);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 11);
    let model = Traj2Hash::new(mcfg, &ctx, 13);
    (dataset, model)
}

/// The pre-refactor direct path for one strategy, over a frozen corpus.
fn direct_path(
    embs: &[Vec<f32>],
    codes: &[BinaryCode],
    q_emb: &[f32],
    k: usize,
    strategy: Strategy,
) -> Vec<SlotHit> {
    let qc = BinaryCode::from_floats(q_emb);
    match strategy {
        Strategy::EuclideanBf => euclidean_top_k(embs, q_emb, k),
        Strategy::HammingBf => hamming_top_k(codes, &qc, k),
        Strategy::Table => {
            let table = HammingTable::try_build(codes.to_vec()).unwrap();
            let ball: Vec<SlotHit> = table
                .lookup_within(&qc, 2)
                .unwrap()
                .into_iter()
                .flat_map(|(d, slots)| {
                    slots.into_iter().map(move |s| SlotHit { index: s, distance: d as f64 })
                })
                .collect();
            top_k_hits(ball, k)
        }
        Strategy::Mih => {
            MultiIndexHashing::try_build(codes.to_vec(), 4).unwrap().top_k(&qc, k).unwrap()
        }
        Strategy::Hybrid => {
            HammingTable::try_build(codes.to_vec()).unwrap().hybrid_top_k(&qc, k).unwrap()
        }
    }
}

#[test]
fn fresh_engine_matches_direct_path_bit_for_bit_on_every_strategy() {
    let (dataset, model) = world();
    let corpus = dataset.database.clone();
    let embs = model.embed_all(&corpus);
    let codes: Vec<BinaryCode> = embs.iter().map(|e| BinaryCode::from_floats(e)).collect();
    let engine =
        Traj2HashEngine::build_from(&model, corpus, EngineConfig::default()).unwrap();

    for q in &dataset.query {
        let q_emb = model.embed(q).data().to_vec();
        for k in [1usize, 5, 10, 37] {
            for strategy in Strategy::ALL {
                let want = direct_path(&embs, &codes, &q_emb, k, strategy);
                let got = engine.query(q, k, strategy).unwrap();
                // Fresh build assigns ids 0..n in corpus order, so the
                // engine's stable ids ARE the direct path's indices.
                let got: Vec<SlotHit> = got
                    .into_iter()
                    .map(|h| SlotHit { index: h.id as usize, distance: h.distance })
                    .collect();
                assert_eq!(
                    got,
                    want,
                    "{} diverged from the direct path at k={k}",
                    strategy.name()
                );
            }
        }
    }
}

#[test]
fn vptree_backend_agrees_with_brute_force() {
    let (dataset, model) = world();
    let cfg_vp =
        EngineConfig { euclidean_backend: EuclideanBackend::VpTree, ..EngineConfig::default() };
    let bf = Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
        .unwrap();
    let vp = Traj2HashEngine::build_from(&model, dataset.database.clone(), cfg_vp).unwrap();
    for q in &dataset.query {
        assert_eq!(
            bf.query(q, 10, Strategy::EuclideanBf).unwrap(),
            vp.query(q, 10, Strategy::EuclideanBf).unwrap(),
        );
    }
}

#[test]
fn k_zero_and_empty_engine_answer_with_nothing() {
    let (dataset, model) = world();
    let engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    let empty =
        Traj2HashEngine::build_from(&model, Vec::new(), EngineConfig::default()).unwrap();
    assert!(empty.is_empty());
    for strategy in Strategy::ALL {
        assert!(engine.query(&dataset.query[0], 0, strategy).unwrap().is_empty());
        assert!(empty.query(&dataset.query[0], 5, strategy).unwrap().is_empty());
    }
}

#[test]
fn remove_rejects_unknown_and_double_removal() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    assert!(matches!(engine.remove(999_999), Err(EngineError::UnknownId(999_999))));
    engine.remove(3).unwrap();
    assert!(matches!(engine.remove(3), Err(EngineError::UnknownId(3))));
    assert!(!engine.contains(3));
    assert!(engine.get(3).is_none());
}

#[test]
fn removed_trajectories_vanish_from_every_strategy() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    let q = &dataset.query[0];
    // Remove the entire Euclidean top-5, then confirm none of the five
    // ever reappears under any strategy.
    let victims: Vec<u64> =
        engine.query(q, 5, Strategy::EuclideanBf).unwrap().iter().map(|h| h.id).collect();
    for &id in &victims {
        engine.remove(id).unwrap();
    }
    for strategy in Strategy::ALL {
        let hits = engine.query(q, 20, strategy).unwrap();
        for h in &hits {
            assert!(!victims.contains(&h.id), "{} resurfaced a tombstone", strategy.name());
        }
    }
    assert_eq!(engine.len(), dataset.database.len() - victims.len());
}

#[test]
fn compaction_preserves_ids_and_answers() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    for id in [0u64, 7, 13, 44, 80] {
        engine.remove(id).unwrap();
    }
    let q = &dataset.query[1];
    let before: Vec<_> =
        Strategy::ALL.iter().map(|&s| engine.query(q, 15, s).unwrap()).collect();
    let ids_before: Vec<u64> = engine.ids().collect();
    let gen_before = engine.stats().generation;

    engine.compact();

    let after: Vec<_> =
        Strategy::ALL.iter().map(|&s| engine.query(q, 15, s).unwrap()).collect();
    let stats = engine.stats();
    assert_eq!(before, after, "compaction changed query answers");
    assert_eq!(ids_before, engine.ids().collect::<Vec<_>>(), "compaction changed live ids");
    assert_eq!(stats.dead, 0);
    assert_eq!(stats.delta, 0);
    assert!(stats.generation > gen_before);
}

#[test]
fn inserts_are_searchable_immediately_and_get_fresh_ids() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    let novel = dataset.query[2].clone();
    let id = engine.insert(novel.clone());
    assert_eq!(id, dataset.database.len() as u64);
    assert!(engine.contains(id));
    // A self-query must find the fresh entry at distance 0 under every
    // strategy — it lives in the delta region, proving the linear merge
    // actually runs. In Euclidean space it is also rank 1 outright; in
    // Hamming space the untrained model's codes collide, so it may tie
    // at distance 0 with older entries (which win the index tie-break).
    let top = engine.query(&novel, 1, Strategy::EuclideanBf).unwrap();
    assert_eq!(top[0].id, id);
    assert_eq!(top[0].distance, 0.0);
    for strategy in Strategy::ALL {
        let hits = engine.query(&novel, engine.len(), strategy).unwrap();
        let me = hits
            .iter()
            .find(|h| h.id == id)
            .unwrap_or_else(|| panic!("{} cannot see the fresh insert", strategy.name()));
        assert_eq!(me.distance, 0.0, "{}", strategy.name());
    }
    // Its id is never recycled, even after removal + compaction.
    engine.remove(id).unwrap();
    engine.compact();
    let id2 = engine.insert(novel);
    assert!(id2 > id);
}

#[test]
fn degraded_mode_tags_queries_counts_fallbacks_and_recovers() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    let q = &dataset.query[0];

    // Healthy baseline: indexed strategies are neither degraded nor
    // fallbacks, and the over-fetch margin is visible per query.
    let (_, info) = engine.query_with_info(q, 5, Strategy::Mih).unwrap();
    assert!(!info.degraded && !info.linear_fallback);
    assert_eq!(info.strategy, Strategy::Mih);
    assert!(info.seconds >= 0.0 && info.candidates > 0);
    let healthy_hamming = engine.query(q, 10, Strategy::HammingBf).unwrap();
    let healthy_euclid = engine.query(q, 10, Strategy::EuclideanBf).unwrap();
    let healthy_mih = engine.query(q, 10, Strategy::Mih).unwrap();
    let base = engine.telemetry();
    assert_eq!(base.total_linear_fallbacks(), 0);
    assert!(base.rebuilds >= 1);

    // Chaos drill: drop the indexes. Every strategy must still answer
    // (exactly — the scan path is the reference implementation), tag its
    // QueryInfo as degraded, and the index-backed strategies must count
    // linear fallbacks, both in engine telemetry and in the obs mirror.
    let rec = std::sync::Arc::new(traj_obs::InMemoryRecorder::default());
    traj_obs::with_local_recorder(rec.clone(), || {
        engine.force_degrade();
        for strategy in Strategy::ALL {
            let (hits, info) = engine.query_with_info(q, 10, strategy).unwrap();
            assert!(info.degraded, "{} not tagged degraded", strategy.name());
            assert_eq!(info.overfetch, 0, "no indexed region, no over-fetch margin");
            let expect_fallback =
                matches!(strategy, Strategy::Table | Strategy::Mih | Strategy::Hybrid);
            assert_eq!(
                info.linear_fallback,
                expect_fallback,
                "{}: by-design scans are not fallbacks, index paths are",
                strategy.name()
            );
            match strategy {
                Strategy::EuclideanBf => assert_eq!(hits, healthy_euclid),
                Strategy::HammingBf => assert_eq!(hits, healthy_hamming),
                // Degraded Table widens to an exact Hamming top-k scan
                // (it can no longer enumerate just the radius-2 ball);
                // Mih and Hybrid are exact top-k either way.
                Strategy::Table | Strategy::Hybrid | Strategy::Mih => {
                    assert_eq!(hits, healthy_mih, "{}", strategy.name())
                }
            }
        }
    });
    let tele = engine.telemetry();
    assert_eq!(tele.degraded_rebuilds, base.degraded_rebuilds + 1);
    assert_eq!(tele.total_linear_fallbacks(), 3, "Table, Mih, Hybrid fell back");
    assert_eq!(tele.strategy(Strategy::EuclideanBf).linear_fallbacks, 0);
    assert_eq!(tele.strategy(Strategy::Table).degraded_queries, 1);

    let agg = rec.aggregates();
    assert_eq!(agg.counter_value("engine.degraded_entries"), 1);
    assert_eq!(agg.counter_value("engine.degraded_queries"), 5);
    assert_eq!(agg.counter_value("engine.linear_fallbacks"), 3);
    assert_eq!(agg.events_named("engine.degraded").count(), 1);
    for strategy in Strategy::ALL {
        assert_eq!(
            agg.histograms.get(strategy.metric_name()).map(|h| h.count()),
            Some(1),
            "{} latency histogram missing from the obs mirror",
            strategy.name()
        );
    }

    // Compaction rebuilds the indexes: the engine leaves degraded mode
    // and the fallback counters stop moving.
    engine.compact();
    let (hits, info) = engine.query_with_info(q, 10, Strategy::Mih).unwrap();
    assert!(!info.degraded && !info.linear_fallback);
    assert_eq!(hits, healthy_mih);
    assert_eq!(engine.telemetry().total_linear_fallbacks(), 3);
}

/// Applies one op stream to an incrementally maintained engine and to a
/// shadow list, then checks the engine agrees with a from-scratch build
/// over exactly the shadow's survivors.
fn check_incremental_matches_rebuilt(ops: &[(bool, usize)]) {
    let (dataset, model) = world();
    // Tiny slack so the op stream actually crosses rebuild thresholds.
    let cfg = EngineConfig { rebuild_slack: 4, ..EngineConfig::default() };
    let initial: Vec<Trajectory> = dataset.database[..12].to_vec();
    let mut engine = Traj2HashEngine::build_from(&model, initial.clone(), cfg.clone()).unwrap();
    let mut shadow: Vec<(u64, Trajectory)> =
        initial.into_iter().enumerate().map(|(i, t)| (i as u64, t)).collect();

    let mut pool = dataset.database[12..].iter().cloned().cycle();
    for &(insert, pick) in ops {
        if insert {
            let t = pool.next().unwrap();
            let id = engine.insert(t.clone());
            shadow.push((id, t));
        } else if !shadow.is_empty() {
            let (id, _) = shadow.remove(pick % shadow.len());
            engine.remove(id).unwrap();
        }
    }

    assert_eq!(engine.len(), shadow.len());
    let shadow_ids: Vec<u64> = shadow.iter().map(|(id, _)| *id).collect();
    assert_eq!(engine.ids().collect::<Vec<_>>(), shadow_ids);

    // Reference: built from scratch over the survivors, in id order
    // (which is the shadow's order — removals keep it sorted). Its slot
    // i therefore corresponds to shadow id shadow_ids[i].
    let survivors: Vec<Trajectory> = shadow.iter().map(|(_, t)| t.clone()).collect();
    let reference = Traj2HashEngine::build_from(&model, survivors, cfg).unwrap();
    for q in dataset.query.iter().take(3) {
        for k in [1usize, 7] {
            for strategy in Strategy::ALL {
                let got = engine.query(q, k, strategy).unwrap();
                let want: Vec<(u64, f64)> = reference
                    .query(q, k, strategy)
                    .unwrap()
                    .into_iter()
                    .map(|h| (shadow_ids[h.id as usize], h.distance))
                    .collect();
                let got: Vec<(u64, f64)> =
                    got.into_iter().map(|h| (h.id, h.distance)).collect();
                assert_eq!(
                    got,
                    want,
                    "{} diverged after {} ops at k={}",
                    strategy.name(),
                    ops.len(),
                    k
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_engine_matches_from_scratch_rebuild(
        ops in proptest::collection::vec((proptest::bool::ANY, 0usize..64), 0..24),
    ) {
        check_incremental_matches_rebuilt(&ops);
    }
}

#[test]
fn snapshot_roundtrips_bit_for_bit() {
    let (dataset, model) = world();
    let mut engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    // Dirty the state so the snapshot covers delta + tombstones too.
    engine.insert(dataset.query[0].clone());
    engine.remove(5).unwrap();
    engine.remove(41).unwrap();

    let bytes = engine.snapshot_bytes().unwrap();
    let loaded = Traj2HashEngine::from_snapshot_bytes(&bytes).unwrap();

    assert_eq!(loaded.len(), engine.len());
    assert_eq!(loaded.ids().collect::<Vec<_>>(), engine.ids().collect::<Vec<_>>());
    for q in &dataset.query {
        for strategy in Strategy::ALL {
            assert_eq!(
                loaded.query(q, 12, strategy).unwrap(),
                engine.query(q, 12, strategy).unwrap(),
                "{} diverged after snapshot reload",
                strategy.name()
            );
        }
    }
    // next_id survives: a post-reload insert gets a fresh id, not a
    // recycled one.
    let mut loaded = loaded;
    let fresh = loaded.insert(dataset.query[1].clone());
    assert!(fresh > dataset.database.len() as u64);
}

#[test]
fn snapshot_roundtrips_without_grid_channel() {
    let sizes = SplitSizes { seeds: 16, validation: 20, corpus: 150, query: 8, database: 40 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 17);
    let mcfg = ModelConfig::tiny().without_grids();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 17);
    let model = Traj2Hash::new(mcfg, &ctx, 19);
    let engine = Traj2HashEngine::build(model, dataset.database.clone(), EngineConfig::default())
        .unwrap();
    let loaded = Traj2HashEngine::from_snapshot_bytes(&engine.snapshot_bytes().unwrap()).unwrap();
    for q in &dataset.query {
        assert_eq!(
            loaded.query(q, 8, Strategy::EuclideanBf).unwrap(),
            engine.query(q, 8, Strategy::EuclideanBf).unwrap(),
        );
    }
}

#[test]
fn snapshot_survives_the_filesystem() {
    let (dataset, model) = world();
    let engine =
        Traj2HashEngine::build_from(&model, dataset.database.clone(), EngineConfig::default())
            .unwrap();
    let path = std::env::temp_dir().join(format!("t2h-engine-{}.snap", std::process::id()));
    engine.save_snapshot(&path).unwrap();
    let loaded = Traj2HashEngine::load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        loaded.query(&dataset.query[0], 10, Strategy::Mih).unwrap(),
        engine.query(&dataset.query[0], 10, Strategy::Mih).unwrap(),
    );
}

#[test]
fn corrupted_snapshots_are_rejected_not_loaded() {
    let (dataset, model) = world();
    let engine = Traj2HashEngine::build_from(
        &model,
        dataset.database[..30].to_vec(),
        EngineConfig::default(),
    )
    .unwrap();
    let bytes = engine.snapshot_bytes().unwrap();

    // Bit flips anywhere in the payload trip the checksum.
    for pos in [24usize, bytes.len() / 2, bytes.len() - 1] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match Traj2HashEngine::from_snapshot_bytes(&bad) {
            Err(EngineError::Snapshot(CheckpointError::ChecksumMismatch { .. })) => {}
            Err(e) => panic!("corruption at byte {pos} surfaced the wrong error: {e}"),
            Ok(_) => panic!("corruption at byte {pos} was not caught"),
        }
    }

    // A flipped magic byte is a different file format, not corruption.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xFF;
    assert!(matches!(
        Traj2HashEngine::from_snapshot_bytes(&wrong_magic),
        Err(EngineError::Snapshot(CheckpointError::BadMagic))
    ));

    // Truncation at any prefix must error, never panic or mis-load.
    for cut in [0usize, 7, 15, bytes.len() - 9] {
        assert!(
            Traj2HashEngine::from_snapshot_bytes(&bytes[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }

    // A model checkpoint is not an engine snapshot.
    let ckpt = traj2hash::Checkpoint {
        epoch: 0,
        adam_steps: 0,
        triplet_cursor: 0,
        lr: 0.1,
        best_epoch: 0,
        best_val: None,
        params_state: Vec::new(),
        best_params: Vec::new(),
        epoch_losses: Vec::new(),
        val_hr10: Vec::new(),
        recoveries: Vec::new(),
    }
    .encode();
    assert!(matches!(
        Traj2HashEngine::from_snapshot_bytes(&ckpt),
        Err(EngineError::Snapshot(CheckpointError::BadMagic))
    ));
}
