//! End-to-end integration tests: the full pipeline from synthetic data
//! through training to top-k search, spanning every crate.

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;
use traj_engine::{EngineConfig, Strategy, Traj2HashEngine};
use traj_eval::{ground_truth_top_k, pack_codes, rank_hamming, Metrics};
use traj2hash::{train, ModelConfig, ModelContext, Traj2Hash, TrainConfig, TrainData};

fn tiny_world() -> (Dataset, ModelContext, TrainConfig) {
    let sizes = SplitSizes { seeds: 24, validation: 30, corpus: 250, query: 12, database: 120 };
    let dataset = Dataset::generate(CityParams::test_city(), sizes, 5);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 5);
    let tcfg = TrainConfig {
        epochs: 4,
        coarse_cell_m: 500.0,
        triplets_per_epoch: 64,
        triplet_batch: 32,
        validate: false,
        ..TrainConfig::default()
    };
    (dataset, ctx, tcfg)
}

/// Ranks every query through the serving engine (the trainer keeps the
/// model; ids on a fresh build are database positions).
fn strategy_metrics(
    model: &Traj2Hash,
    dataset: &Dataset,
    truth: &[Vec<usize>],
    strategy: Strategy,
) -> Metrics {
    let engine =
        Traj2HashEngine::build_from(model, dataset.database.clone(), EngineConfig::default())
            .expect("engine build");
    let ranked: Vec<Vec<usize>> = dataset
        .query
        .iter()
        .map(|q| {
            engine
                .query(q, 50, strategy)
                .expect("engine query")
                .into_iter()
                .map(|h| h.id as usize)
                .collect()
        })
        .collect();
    Metrics::evaluate(&ranked, truth)
}

fn euclidean_metrics(model: &Traj2Hash, dataset: &Dataset, truth: &[Vec<usize>]) -> Metrics {
    strategy_metrics(model, dataset, truth, Strategy::EuclideanBf)
}

fn hamming_metrics(model: &Traj2Hash, dataset: &Dataset, truth: &[Vec<usize>]) -> Metrics {
    strategy_metrics(model, dataset, truth, Strategy::HammingBf)
}

#[test]
fn training_improves_over_untrained_in_both_spaces() {
    let (dataset, ctx, tcfg) = tiny_world();
    let measure = Measure::Frechet;
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 50)
        .expect("ground truth computation failed");
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 6);

    let before_e = euclidean_metrics(&model, &dataset, &truth);
    let before_h = hamming_metrics(&model, &dataset, &truth);

    let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
    assert!(!data.triplets.is_empty(), "triplet generation found no clusters");
    train(&mut model, &data, &tcfg).expect("training failed");

    let after_e = euclidean_metrics(&model, &dataset, &truth);
    let after_h = hamming_metrics(&model, &dataset, &truth);

    // The untrained model already scores well in Euclidean space on this
    // tiny world (the frozen pre-trained grid embeddings alone encode
    // location), so we require no material regression there and a strict
    // improvement where training matters most: the Hamming codes, which
    // are uninformative until the ranking objectives structure them.
    assert!(
        after_e.hr10 >= before_e.hr10 - 0.05,
        "Euclidean HR@10 regressed materially: {} -> {}",
        before_e.hr10,
        after_e.hr10
    );
    assert!(
        after_h.hr10 > before_h.hr10,
        "Hamming HR@10 did not improve: {} -> {}",
        before_h.hr10,
        after_h.hr10
    );
    assert!(
        after_h.r10_50 > before_h.r10_50,
        "Hamming R10@50 did not improve: {} -> {}",
        before_h.r10_50,
        after_h.r10_50
    );
}

#[test]
fn trained_model_keeps_reverse_symmetry() {
    let (dataset, ctx, tcfg) = tiny_world();
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 7);
    let data = TrainData::prepare(&dataset, Measure::Dtw, &tcfg).expect("failed to prepare training supervision");
    train(&mut model, &data, &tcfg).expect("training failed");
    // Lemma 3 is structural: it must survive training.
    for i in 0..4 {
        let a = &dataset.query[i];
        let b = &dataset.query[i + 1];
        let fwd = model.approx_distance(a, b);
        let rev = model.approx_distance(&a.reversed(), &b.reversed());
        assert!(
            (fwd - rev).abs() < 1e-3,
            "reverse symmetry broken after training: {fwd} vs {rev}"
        );
    }
}

#[test]
fn model_roundtrips_through_save_load() {
    let (dataset, ctx, tcfg) = tiny_world();
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 8);
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).expect("failed to prepare training supervision");
    train(&mut model, &data, &tcfg).expect("training failed");
    let blob = model.save_bytes();

    let clone = Traj2Hash::new(ModelConfig::tiny(), &ctx, 12345);
    clone.load_bytes(&blob).expect("load must succeed for identical architecture");
    for t in dataset.query.iter().take(3) {
        assert_eq!(model.hash_signs(t), clone.hash_signs(t));
        assert!(model.embed(t).max_abs_diff(&clone.embed(t)) < 1e-6);
    }
}

#[test]
fn hash_codes_beat_random_codes() {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let (dataset, ctx, tcfg) = tiny_world();
    let measure = Measure::Frechet;
    let truth = ground_truth_top_k(&dataset.query, &dataset.database, measure, 50)
        .expect("ground truth computation failed");
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 9);
    let data = TrainData::prepare(&dataset, measure, &tcfg).expect("failed to prepare training supervision");
    train(&mut model, &data, &tcfg).expect("training failed");
    let trained = hamming_metrics(&model, &dataset, &truth);

    let mut rng = StdRng::seed_from_u64(1);
    let bits = model.embedding_dim();
    let mut random_code = |_: usize| -> Vec<i8> {
        (0..bits).map(|_| if rng.random::<bool>() { 1 } else { -1 }).collect()
    };
    let db: Vec<Vec<i8>> = (0..dataset.database.len()).map(&mut random_code).collect();
    let q: Vec<Vec<i8>> = (0..dataset.query.len()).map(&mut random_code).collect();
    let random = Metrics::evaluate(
        &rank_hamming(&pack_codes(&db), &pack_codes(&q), 50),
        &truth,
    );
    assert!(
        trained.hr10 > random.hr10 + 0.05,
        "trained codes ({}) should clearly beat random codes ({})",
        trained.hr10,
        random.hr10
    );
}

#[test]
fn validation_model_selection_restores_best_epoch() {
    let (dataset, ctx, mut tcfg) = tiny_world();
    tcfg.validate = true;
    tcfg.epochs = 3;
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 10);
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).expect("failed to prepare training supervision");
    let report = train(&mut model, &data, &tcfg).expect("training failed");
    assert_eq!(report.val_hr10.len(), 3);
    let best = report.val_hr10[report.best_epoch];
    for &v in &report.val_hr10 {
        assert!(best >= v, "best epoch is not the max: {:?}", report.val_hr10);
    }
    // restored parameters reproduce the recorded best HR@10
    let recomputed = traj2hash::validation_hr10(&model, &data);
    assert!((recomputed - best).abs() < 1e-9);
}
