//! Fault-injection test harness: deliberately breaks training, data
//! ingestion, checkpoint files, and search queries, and asserts the
//! system degrades the way DESIGN.md promises — rollback and retry for
//! divergence, budgeted skipping for corrupt rows, typed errors (never
//! garbage, never a crash) for corrupt checkpoints and mismatched
//! queries.

use proptest::prelude::*;
use traj_data::{load_porto_csv, parse_polyline, LoadError, LoadPolicy};
use traj_index::{BinaryCode, HammingTable, MultiIndexHashing, SearchError};
use traj2hash::checkpoint::{Checkpoint, CheckpointError};
use traj2hash::{
    train, train_with_hooks, ModelConfig, ModelContext, RecoveryKind, Traj2Hash, TrainConfig,
    TrainData, TrainError, TrainHooks,
};

use traj_data::{CityParams, Dataset, SplitSizes};
use traj_dist::Measure;

// ---------------------------------------------------------------------
// Fault injectors
// ---------------------------------------------------------------------

/// Generates an ECML/PKDD-format CSV with `good` healthy rows and
/// `corrupt` broken ones (cycling through the corruption kinds), in a
/// deterministic interleaving.
fn corrupt_csv(good: usize, corrupt: usize) -> String {
    let mut rows: Vec<String> = Vec::new();
    for i in 0..good {
        let lon = -8.62 + (i as f64) * 1e-4;
        rows.push(format!(
            "\"{i}\",\"A\",\"[[{lon:.6},41.15],[{:.6},41.151],[{:.6},41.152]]\"",
            lon + 1e-4,
            lon + 2e-4
        ));
    }
    let corruptions = [
        "\"[[-8.62,41.15\"",                      // unclosed bracket
        "\"[[oops,41.15],[-8.62,41.151]]\"",      // unparseable number
        "\"[[-8.62,441.15],[-8.62,41.151]]\"",    // latitude off the planet
        "\"totally not json\"",                   // not an array at all
    ];
    for i in 0..corrupt {
        rows.push(format!("\"bad{i}\",\"B\",{}", corruptions[i % corruptions.len()]));
    }
    // Deterministic interleave so corrupt rows are spread through the
    // file rather than clustered at the end.
    let mut csv = String::from("\"TRIP_ID\",\"CALL_TYPE\",\"POLYLINE\"\n");
    let stride = rows.len().div_ceil(corrupt.max(1));
    let (healthy, broken) = rows.split_at(good);
    let mut b = broken.iter();
    for (i, row) in healthy.iter().enumerate() {
        csv.push_str(row);
        csv.push('\n');
        if (i + 1) % stride.max(1) == 0 {
            if let Some(r) = b.next() {
                csv.push_str(r);
                csv.push('\n');
            }
        }
    }
    for r in b {
        csv.push_str(r);
        csv.push('\n');
    }
    csv
}

/// Flips one bit of a serialized checkpoint — the on-disk corruption a
/// torn write or bad sector would produce.
fn flip_bit(bytes: &[u8], bit: usize) -> Vec<u8> {
    let mut out = bytes.to_vec();
    out[bit / 8] ^= 1 << (bit % 8);
    out
}

fn tiny_dataset(seed: u64) -> Dataset {
    Dataset::generate(
        CityParams::test_city(),
        SplitSizes { seeds: 16, validation: 24, corpus: 120, query: 5, database: 40 },
        seed,
    )
}

// ---------------------------------------------------------------------
// Training: divergence guard end to end
// ---------------------------------------------------------------------

#[test]
fn nan_loss_mid_training_rolls_back_and_recovers() {
    let dataset = tiny_dataset(31);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
    let mut model = Traj2Hash::new(mcfg, &ctx, 2);
    let tcfg = TrainConfig { epochs: 4, ..TrainConfig::tiny() };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();

    // Inject: the loss reported for epoch 2 becomes NaN, once.
    let mut fired = false;
    let hooks = TrainHooks::with_loss_hook(move |epoch, loss| {
        if epoch == 2 && !fired {
            fired = true;
            f32::NAN
        } else {
            loss
        }
    });

    let report = train_with_hooks(&mut model, &data, &tcfg, hooks)
        .expect("training must survive a single NaN epoch");

    // All epochs completed with finite recorded losses.
    assert_eq!(report.epoch_losses.len(), 4);
    assert!(
        report.epoch_losses.iter().all(|l| l.is_finite()),
        "recorded losses must be finite: {:?}",
        report.epoch_losses
    );
    // The recovery log is non-empty and points at the injected epoch.
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].epoch, 2);
    assert_eq!(report.recoveries[0].kind, RecoveryKind::NonFiniteLoss);
    // The retry ran at a reduced learning rate.
    assert!(report.final_lr < tcfg.lr);
    // And the model it produced still hashes trajectories.
    let code = model.hash_signs(&dataset.query[0]);
    assert_eq!(code.len(), model.embedding_dim());
}

#[test]
fn rollback_and_lr_backoff_events_mirror_the_train_report() {
    let dataset = tiny_dataset(31);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
    let tcfg = TrainConfig { epochs: 4, ..TrainConfig::tiny() };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();

    // Same injection as the recovery test above: epoch 2's loss turns
    // NaN exactly once. This time the run is observed, and the recorder
    // must tell exactly the story TrainReport tells — no missing events,
    // no phantom ones.
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
    let mut fired = false;
    let hooks = TrainHooks::with_loss_hook(move |epoch, loss| {
        if epoch == 2 && !fired {
            fired = true;
            f32::NAN
        } else {
            loss
        }
    });
    let rec = std::sync::Arc::new(traj_obs::InMemoryRecorder::default());
    let report = traj_obs::with_local_recorder(rec.clone(), || {
        train_with_hooks(&mut model, &data, &tcfg, hooks)
    })
    .expect("training must survive a single NaN epoch");

    assert_eq!(report.recoveries.len(), 1);
    let agg = rec.aggregates();
    let rollbacks: Vec<_> = agg.events_named("train.rollback").collect();
    assert_eq!(rollbacks.len(), report.recoveries.len());
    assert_eq!(agg.counter_value("train.rollbacks"), report.recoveries.len() as u64);
    for (ev, recovery) in rollbacks.iter().zip(&report.recoveries) {
        assert_eq!(ev.field("epoch"), Some(&traj_obs::Value::U64(recovery.epoch as u64)));
        assert_eq!(ev.field("kind"), Some(&traj_obs::Value::Str(recovery.kind.to_string())));
        assert_eq!(
            ev.field("restored_epoch"),
            Some(&traj_obs::Value::U64(recovery.restored_epoch as u64))
        );
        assert_eq!(
            ev.field("lr_after"),
            Some(&traj_obs::Value::F64(recovery.lr_after as f64))
        );
    }

    let backoffs: Vec<_> = agg.events_named("train.lr_backoff").collect();
    assert_eq!(backoffs.len(), report.recoveries.len(), "one backoff per rollback");
    for (ev, recovery) in backoffs.iter().zip(&report.recoveries) {
        assert_eq!(
            ev.field("lr_after"),
            Some(&traj_obs::Value::F64(recovery.lr_after as f64))
        );
        match (ev.field("lr_before"), ev.field("lr_after")) {
            (Some(traj_obs::Value::F64(before)), Some(traj_obs::Value::F64(after))) => {
                assert!(after < before, "backoff must reduce the learning rate")
            }
            other => panic!("lr_backoff event missing lr fields: {other:?}"),
        }
    }

    // Span accounting agrees too: one epoch span per accepted epoch plus
    // one per rolled-back attempt, with the rollback tagged on its span,
    // and the report's timing section matching split for split.
    let epoch_spans: Vec<_> =
        agg.spans.iter().filter(|s| s.path == "train/epoch").collect();
    assert_eq!(
        epoch_spans.len(),
        report.epoch_losses.len() + report.recoveries.len()
    );
    assert_eq!(
        epoch_spans
            .iter()
            .filter(|s| s.field("rolled_back") == Some(&traj_obs::Value::Bool(true)))
            .count(),
        report.recoveries.len()
    );
    assert_eq!(report.timings.epoch_seconds.len(), report.epoch_losses.len());
    assert!(report.timings.rolled_back_seconds > 0.0);

    // A clean run records zero rollback/backoff events — the recorder
    // never invents recoveries the report does not have.
    let mut clean_model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
    let clean_rec = std::sync::Arc::new(traj_obs::InMemoryRecorder::default());
    let clean_report = traj_obs::with_local_recorder(clean_rec.clone(), || {
        train(&mut clean_model, &data, &tcfg)
    })
    .unwrap();
    assert!(clean_report.recoveries.is_empty());
    let clean_agg = clean_rec.aggregates();
    assert_eq!(clean_agg.events_named("train.rollback").count(), 0);
    assert_eq!(clean_agg.events_named("train.lr_backoff").count(), 0);
    assert_eq!(clean_agg.counter_value("train.rollbacks"), 0);
}

#[test]
fn unrecoverable_divergence_is_a_typed_error() {
    let dataset = tiny_dataset(32);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
    let mut model = Traj2Hash::new(mcfg, &ctx, 2);
    let tcfg = TrainConfig { epochs: 2, max_rollbacks: 1, ..TrainConfig::tiny() };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
    let hooks = TrainHooks::with_loss_hook(|_, _| f32::NAN);
    match train_with_hooks(&mut model, &data, &tcfg, hooks) {
        Err(TrainError::Diverged { retries: 1, .. }) => {}
        other => panic!("expected Diverged after exhausting rollbacks, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Checkpoints: corruption is detected, resume survives a crash
// ---------------------------------------------------------------------

#[test]
fn corrupted_checkpoint_file_fails_typed_on_resume() {
    let dir = std::env::temp_dir().join("traj2hash_ft_corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("train.ckpt");

    let dataset = tiny_dataset(33);
    let mcfg = ModelConfig::tiny();
    let ctx = ModelContext::prepare(&dataset.training_visible(), &mcfg, 1);
    let tcfg = TrainConfig {
        epochs: 2,
        checkpoint_path: Some(path.clone()),
        ..TrainConfig::tiny()
    };
    let data = TrainData::prepare(&dataset, Measure::Frechet, &tcfg).unwrap();
    let mut model = Traj2Hash::new(ModelConfig::tiny(), &ctx, 2);
    train(&mut model, &data, &tcfg).unwrap();

    let bytes = std::fs::read(&path).unwrap();
    // A bit flip anywhere in the payload region must be caught by the
    // CRC (or the header checks) and surface as a typed error on
    // resume, never as silently-wrong parameters.
    for bit in [8 * 20, 8 * (bytes.len() / 2), 8 * (bytes.len() - 1) + 7] {
        std::fs::write(&path, flip_bit(&bytes, bit)).unwrap();
        let mut resumed = Traj2Hash::new(ModelConfig::tiny(), &ctx, 3);
        let resume_cfg = TrainConfig { resume: true, ..tcfg.clone() };
        match train(&mut resumed, &data, &resume_cfg) {
            Err(TrainError::Checkpoint(_)) => {}
            other => panic!("bit {bit}: expected Checkpoint error, got {other:?}"),
        }
    }

    // Truncation (torn write survived by a crashed renamer) too.
    std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
    let mut resumed = Traj2Hash::new(ModelConfig::tiny(), &ctx, 3);
    let resume_cfg = TrainConfig { resume: true, ..tcfg.clone() };
    assert!(matches!(
        train(&mut resumed, &data, &resume_cfg),
        Err(TrainError::Checkpoint(_))
    ));

    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Ingestion: error budget
// ---------------------------------------------------------------------

#[test]
fn ten_percent_corruption_loads_under_lenient_budget_fails_under_strict() {
    // 90 healthy rows + 10 corrupt = exactly 10% corruption.
    let csv = corrupt_csv(90, 10);

    // 20% budget: the load succeeds, skipping and classifying.
    let lenient = LoadPolicy { max_corrupt_fraction: 0.20, ..LoadPolicy::default() };
    let (trajs, report) = load_porto_csv(csv.as_bytes(), &lenient)
        .expect("10% corruption must fit a 20% budget");
    assert_eq!(trajs.len(), 90);
    assert_eq!(report.rows, 100);
    assert_eq!(report.loaded, 90);
    assert_eq!(report.corrupt(), 10);
    assert!((report.corrupt_fraction() - 0.10).abs() < 1e-12);
    // The classification is itemized, not lumped.
    assert!(report.malformed > 0 && report.bad_number > 0 && report.out_of_bounds > 0);

    // 5% budget: same file, typed failure carrying the same accounting.
    let strict = LoadPolicy { max_corrupt_fraction: 0.05, ..LoadPolicy::default() };
    match load_porto_csv(csv.as_bytes(), &strict) {
        Err(LoadError::BudgetExceeded { report, budget }) => {
            assert_eq!(report.corrupt(), 10);
            assert_eq!(report.rows, 100);
            assert!((budget - 0.05).abs() < 1e-12);
        }
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Search: degraded queries
// ---------------------------------------------------------------------

#[test]
fn search_structures_survive_degenerate_queries() {
    let codes: Vec<BinaryCode> = (0..32)
        .map(|i| {
            let signs: Vec<i8> = (0..16).map(|b| if (i >> (b % 5)) & 1 == 1 { 1 } else { -1 }).collect();
            BinaryCode::from_signs(&signs)
        })
        .collect();

    let mih = MultiIndexHashing::try_build(codes.clone(), 4).unwrap();
    let table = HammingTable::try_build(codes.clone()).unwrap();

    // Width-mismatched query: typed error, not a panic, from every path.
    let wide = BinaryCode::zeros(64);
    assert_eq!(
        mih.top_k(&wide, 3),
        Err(SearchError::WidthMismatch { query: 64, index: 16 })
    );
    assert_eq!(
        mih.within_radius(&wide, 2),
        Err(SearchError::WidthMismatch { query: 64, index: 16 })
    );
    assert_eq!(
        table.hybrid_top_k(&wide, 3),
        Err(SearchError::WidthMismatch { query: 64, index: 16 })
    );

    // Empty databases answer anything with nothing.
    let empty_mih = MultiIndexHashing::try_build(Vec::new(), 4).unwrap();
    let empty_table = HammingTable::try_build(Vec::new()).unwrap();
    assert_eq!(empty_mih.top_k(&wide, 5), Ok(Vec::new()));
    assert!(empty_table.hybrid_top_k(&wide, 5).unwrap().is_empty());

    // k beyond the database degrades to "return everything".
    assert_eq!(mih.top_k(&codes[0], 1000).unwrap().len(), codes.len());
    assert_eq!(table.hybrid_top_k(&codes[0], 1000).unwrap().len(), codes.len());
}

// ---------------------------------------------------------------------
// Property tests: parsers and codecs never panic on arbitrary bytes
// ---------------------------------------------------------------------

fn reference_checkpoint() -> Checkpoint {
    Checkpoint {
        epoch: 3,
        adam_steps: 120,
        triplet_cursor: 96,
        lr: 5e-4,
        best_epoch: 2,
        best_val: Some(0.8125),
        params_state: (0u8..200).collect(),
        best_params: (0u8..100).rev().collect(),
        epoch_losses: vec![1.5, 0.9, 0.7],
        val_hr10: vec![0.5, 0.7, 0.8125],
        recoveries: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse_polyline` must never panic, whatever bytes land in the
    /// cell — it either parses or returns a typed error.
    #[test]
    fn parse_polyline_never_panics(cell in proptest::collection::vec(0u8..=255, 0..120)) {
        let s = String::from_utf8_lossy(&cell).into_owned();
        let _ = parse_polyline(&s);
    }

    /// Same for structured-looking inputs, which reach deeper branches
    /// than raw bytes do.
    #[test]
    fn parse_polyline_never_panics_on_bracketed_soup(
        parts in proptest::collection::vec(0u8..6, 1..40),
    ) {
        let tokens = ["[", "]", ",", "-8.6", "41.1", "x"];
        let s: String = parts.iter().map(|&i| tokens[i as usize]).collect();
        let _ = parse_polyline(&s);
    }

    /// A checkpoint survives encode/decode exactly; any single bit flip
    /// is rejected with a typed error — decode never returns garbage.
    #[test]
    fn checkpoint_bit_flips_are_always_detected(bit_frac in 0.0f64..1.0) {
        let ckpt = reference_checkpoint();
        let bytes = ckpt.encode();
        let bit = ((bytes.len() * 8 - 1) as f64 * bit_frac) as usize;
        let corrupted = flip_bit(&bytes, bit);
        match Checkpoint::decode(&corrupted) {
            Err(_) => {}
            Ok(decoded) => {
                // The only acceptable "success" would be decoding the
                // original content exactly — which a bit flip cannot do.
                prop_assert!(false, "bit {} flip went undetected: {:?}", bit, decoded.epoch);
            }
        }
    }

    /// Truncation at any prefix length is a typed error, never a panic
    /// and never a half-restored checkpoint.
    #[test]
    fn checkpoint_truncation_is_always_detected(len_frac in 0.0f64..1.0) {
        let bytes = reference_checkpoint().encode();
        let len = ((bytes.len() - 1) as f64 * len_frac) as usize;
        prop_assert!(Checkpoint::decode(&bytes[..len]).is_err());
    }

    /// Arbitrary bytes never decode (the magic + CRC make accidental
    /// acceptance astronomically unlikely) and never panic.
    #[test]
    fn checkpoint_decode_never_panics_on_noise(
        noise in proptest::collection::vec(0u8..=255, 0..300),
    ) {
        match Checkpoint::decode(&noise) {
            Err(CheckpointError::TooShort)
            | Err(CheckpointError::BadMagic)
            | Err(CheckpointError::UnsupportedVersion(_))
            | Err(CheckpointError::LengthMismatch { .. })
            | Err(CheckpointError::ChecksumMismatch { .. })
            | Err(CheckpointError::Malformed(_)) => {}
            Err(CheckpointError::Io(_)) => prop_assert!(false, "no I/O involved"),
            Ok(_) => prop_assert!(false, "random noise must not decode"),
        }
    }
}
