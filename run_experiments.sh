#!/bin/bash
# Regenerates every table and figure of the paper. Outputs land in
# results/ (stdout = tables, .log = progress lines).
#
# Scales are chosen for a single-core budget of roughly an hour:
#   - table12 (Tables I & II, each model trained once) and table3 run at
#     the default "small" scale;
#   - the read-out / alpha / gamma sweeps (fig4, fig8, fig9) run at
#     "tiny", which preserves their shapes at a fraction of the cost —
#     pass --scale small for the slower, tighter version;
#   - the timing figures (fig5, fig6, ext_indexes) are scale-free.
set -u
BIN=./target/release
run() {
  name=$1; shift
  echo "=== $name: $(date +%H:%M:%S) ==="
  "$@" > "results/$name.txt" 2> "results/$name.log"
}
mkdir -p results
run table12 $BIN/table12 --scale small
run table3  $BIN/table3  --scale small
run fig4    $BIN/fig4    --scale tiny
run fig7    $BIN/fig7    --scale small --city porto --measure frechet
run fig8_dtw     $BIN/fig8 --scale tiny --city porto --measure dtw
run fig8_frechet $BIN/fig8 --scale tiny --city porto --measure frechet
run fig9_dtw     $BIN/fig9 --scale tiny --city porto --measure dtw
run fig9_frechet $BIN/fig9 --scale tiny --city porto --measure frechet
run fig5    $BIN/fig5
run fig6    $BIN/fig6
run fresh_eval  $BIN/fresh_eval --scale small
run ext_indexes $BIN/ext_indexes
echo "=== all done: $(date +%H:%M:%S) ==="
